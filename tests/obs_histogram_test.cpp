#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "metrics/fct.hpp"

namespace elephant::obs {
namespace {

using Hist = LogLinHistogram;

// Accuracy harness: a histogram quantile must agree with the exact
// order-statistic percentile to within the advertised relative error. The
// histogram reports bucket midpoints and uses a ceil-rank rule while the
// exact path interpolates (R-7), so allow the bound plus a whisker of
// rank-convention slack on a 100k-sample population.
void expect_quantiles_match(const std::vector<double>& samples, const Hist& h) {
  for (const double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    const double exact = metrics::percentile(samples, q);
    const double approx = h.quantile(q);
    const double tol = Hist::kMaxRelativeError * exact + 1e-12;
    EXPECT_NEAR(approx, exact, tol) << "q=" << q;
  }
}

TEST(LogLinHistogram, UniformQuantilesWithinAdvertisedError) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> dist(0.001, 10.0);
  Hist h;
  std::vector<double> samples;
  samples.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    h.record(v);
  }
  expect_quantiles_match(samples, h);
}

TEST(LogLinHistogram, LognormalQuantilesWithinAdvertisedError) {
  std::mt19937_64 rng(2);
  std::lognormal_distribution<double> dist(-3.0, 1.5);  // sojourn-time-like
  Hist h;
  std::vector<double> samples;
  samples.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    h.record(v);
  }
  expect_quantiles_match(samples, h);
}

TEST(LogLinHistogram, ParetoQuantilesWithinAdvertisedError) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  Hist h;
  std::vector<double> samples;
  samples.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    // Pareto(xm = 1e-3, alpha = 1.2) by inversion — heavy tail spanning
    // several octaves, the workload FCT shape.
    const double v = 1e-3 / std::pow(1.0 - u(rng), 1.0 / 1.2);
    samples.push_back(v);
    h.record(v);
  }
  expect_quantiles_match(samples, h);
}

TEST(LogLinHistogram, MeanMinMaxAreExact) {
  Hist h;
  h.record(0.5);
  h.record(1.5);
  h.record(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(LogLinHistogram, MergeMatchesSingleHistogram) {
  std::mt19937_64 rng(4);
  std::lognormal_distribution<double> dist(0.0, 1.0);
  Hist all;
  Hist parts[3];
  for (int i = 0; i < 30000; ++i) {
    const double v = dist(rng);
    all.record(v);
    parts[i % 3].record(v);
  }
  Hist merged;
  for (const Hist& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
  EXPECT_NEAR(merged.sum(), all.sum(), 1e-9 * all.sum());  // summation order differs
  for (const double q : {0.01, 0.50, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(LogLinHistogram, MergeIsAssociative) {
  Hist a;
  Hist b;
  Hist c;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(1e-6, 1e3);
  for (int i = 0; i < 1000; ++i) a.record(dist(rng));
  for (int i = 0; i < 2000; ++i) b.record(dist(rng));
  for (int i = 0; i < 500; ++i) c.record(dist(rng));

  Hist ab_c;  // (a ⊕ b) ⊕ c
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  Hist bc;  // a ⊕ (b ⊕ c)
  bc.merge(b);
  bc.merge(c);
  Hist a_bc;
  a_bc.merge(a);
  a_bc.merge(bc);

  EXPECT_EQ(ab_c.count(), a_bc.count());
  EXPECT_DOUBLE_EQ(ab_c.min(), a_bc.min());
  EXPECT_DOUBLE_EQ(ab_c.max(), a_bc.max());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(ab_c.quantile(q), a_bc.quantile(q)) << "q=" << q;
  }
}

TEST(LogLinHistogram, EmptyHistogramReportsZeros) {
  const Hist h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(LogLinHistogram, MergeWithEmptyIsIdentity) {
  Hist h;
  h.record(3.0);
  Hist empty;
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);  // clamped to exact min == max
  empty.merge(h);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 3.0);
}

TEST(LogLinHistogram, SingleValueEveryQuantileIsThatValue) {
  Hist h;
  h.record(0.0621);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.0621) << "q=" << q;
  }
}

TEST(LogLinHistogram, OutOfRangeValuesClampButStayExactAtEdges) {
  Hist h;
  h.record(0.0);                       // ≤ 0 → lowest bucket
  h.record(-5.0);                      // negative → lowest bucket
  h.record(Hist::kMaxValue() * 100);   // above range → top bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);                       // exact side-channel
  EXPECT_DOUBLE_EQ(h.max(), Hist::kMaxValue() * 100);
  // Quantiles clamp to the exact extremes, not the bucket midpoints.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), Hist::kMaxValue() * 100);
}

TEST(LogLinHistogram, NanIsDroppedAndZeroWeightIsNoop) {
  Hist h;
  h.record(std::nan(""));
  h.record_n(1.0, 0);
  EXPECT_EQ(h.count(), 0u);
  h.record_n(2.0, 5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(LogLinHistogram, ResetClears) {
  Hist h;
  h.record(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.record(2.0);  // usable after reset
  EXPECT_EQ(h.count(), 1u);
}

TEST(LogLinHistogram, BucketIndexIsMonotoneAndMidpointConsistent) {
  // Walk several octaves: indices must be non-decreasing in v, and every
  // value must land in a bucket whose midpoint is within the error bound.
  double prev_index = 0;
  for (double v = 1e-7; v < 1e6; v *= 1.03) {
    const std::size_t idx = Hist::bucket_index(v);
    EXPECT_GE(idx, prev_index) << "v=" << v;
    prev_index = static_cast<double>(idx);
    const double mid = Hist::bucket_midpoint(idx);
    EXPECT_NEAR(mid, v, Hist::kMaxRelativeError * v) << "v=" << v;
  }
}

TEST(LogLinHistogram, FctSummaryOverHistogramMatchesExact) {
  std::mt19937_64 rng(6);
  std::lognormal_distribution<double> dist(-1.0, 0.8);
  Hist h;
  std::vector<double> fcts;
  for (int i = 0; i < 50000; ++i) {
    const double v = dist(rng);
    fcts.push_back(v);
    h.record(v);
  }
  const metrics::FctSummary exact = metrics::fct_summary(fcts);
  const metrics::FctSummary approx = metrics::fct_summary(h);
  EXPECT_EQ(approx.count, exact.count);
  EXPECT_NEAR(approx.mean_s, exact.mean_s, 1e-9);  // mean is exact (side sum)
  EXPECT_NEAR(approx.p50_s, exact.p50_s, Hist::kMaxRelativeError * exact.p50_s + 1e-12);
  EXPECT_NEAR(approx.p95_s, exact.p95_s, Hist::kMaxRelativeError * exact.p95_s + 1e-12);
  EXPECT_NEAR(approx.p99_s, exact.p99_s, Hist::kMaxRelativeError * exact.p99_s + 1e-12);
}

}  // namespace
}  // namespace elephant::obs
