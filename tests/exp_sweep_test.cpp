#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "test_util.hpp"

namespace elephant::exp {
namespace {

std::vector<ExperimentConfig> tiny_matrix() {
  auto m = make_matrix({{cca::CcaKind::kCubic, cca::CcaKind::kCubic},
                        {cca::CcaKind::kReno, cca::CcaKind::kCubic}},
                       {aqm::AqmKind::kFifo}, {1.0}, {100e6});
  for (auto& cfg : m) cfg.duration = sim::Time::seconds(5);
  return m;
}

TEST(Sweep, ResultsInInputOrder) {
  SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 1;
  const auto results = run_sweep(tiny_matrix(), opts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].config.cca1, cca::CcaKind::kCubic);
  EXPECT_EQ(results[1].config.cca1, cca::CcaKind::kReno);
  for (const auto& r : results) EXPECT_GT(r.utilization, 0.1);
}

TEST(Sweep, ProgressCallbackSeesEveryConfig) {
  SweepOptions opts;
  opts.use_cache = false;
  std::atomic<int> calls{0};
  std::size_t last_total = 0;
  opts.on_result = [&](const AveragedResult&, std::size_t, std::size_t total) {
    ++calls;
    last_total = total;
  };
  (void)run_sweep(tiny_matrix(), opts);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(last_total, 2u);
}

TEST(Sweep, MultiThreadedMatchesSingleThreaded) {
  SweepOptions serial;
  serial.use_cache = false;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.use_cache = false;
  parallel.threads = 2;
  const auto a = run_sweep(tiny_matrix(), serial);
  const auto b = run_sweep(tiny_matrix(), parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].utilization, b[i].utilization);
    EXPECT_DOUBLE_EQ(a[i].jain2, b[i].jain2);
  }
}

TEST(Sweep, EmptyInputIsEmptyOutput) {
  EXPECT_TRUE(run_sweep({}, SweepOptions{}).empty());
}

TEST(Sweep, AveragingAcrossRepsIsMean) {
  ExperimentConfig cfg = tiny_matrix()[0];
  ExperimentResult r1 = run_experiment(cfg);
  ExperimentConfig cfg2 = cfg;
  cfg2.seed = cfg.seed + 1000003;
  ExperimentResult r2 = run_experiment(cfg2);
  const auto avg = average(cfg, {r1, r2});
  EXPECT_EQ(avg.repetitions, 2);
  EXPECT_NEAR(avg.utilization, (r1.utilization + r2.utilization) / 2, 1e-12);
  EXPECT_NEAR(avg.sender_bps[0], (r1.sender_bps[0] + r2.sender_bps[0]) / 2, 1e-6);
}

}  // namespace
}  // namespace elephant::exp
