#include "metrics/fct.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "metrics/fairness.hpp"

namespace elephant::metrics {
namespace {

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, SingleElementIsThatElementAtEveryQuantile) {
  const std::vector<double> v = {3.5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 3.5);
}

TEST(Percentile, EndpointsAreMinAndMax) {
  const std::vector<double> v = {9.0, 1.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, LinearInterpolationMatchesR7) {
  // R-7 on {1,2,3,4}: rank = q·(n−1); p50 → 2.5, p25 → 1.75.
  const std::vector<double> v = {4.0, 2.0, 1.0, 3.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 3.25);
}

TEST(Percentile, ExactOrderStatisticNeedsNoInterpolation) {
  const std::vector<double> v = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 20.0);
}

TEST(FctSummary, EmptyIsAllZero) {
  const FctSummary s = fct_summary(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean_s, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_s, 0.0);
}

TEST(FctSummary, PercentilesAreOrdered) {
  std::vector<double> fct;
  for (int i = 1; i <= 100; ++i) fct.push_back(0.01 * i);
  const FctSummary s = fct_summary(fct);
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean_s, 0.505, 1e-12);
  EXPECT_LE(s.p50_s, s.p95_s);
  EXPECT_LE(s.p95_s, s.p99_s);
  EXPECT_NEAR(s.p50_s, 0.505, 1e-12);
}

TEST(FctSlowdown, IdealTransferHasSlowdownOne) {
  // 1 MB at 100 Mbps = 80 ms serialization; +20 ms RTT → ideal 0.1 s.
  EXPECT_DOUBLE_EQ(fct_slowdown(0.1, 1e6, 100e6, 0.02), 1.0);
  EXPECT_DOUBLE_EQ(fct_slowdown(0.3, 1e6, 100e6, 0.02), 3.0);
}

TEST(FctSlowdown, DegenerateInputsAreNaN) {
  // A 0 slowdown would read as "infinitely fast" and pull aggregated
  // percentiles toward zero; NaN forces callers to drop the sample.
  EXPECT_TRUE(std::isnan(fct_slowdown(0.0, 1e6, 100e6, 0.02)));
  EXPECT_TRUE(std::isnan(fct_slowdown(0.1, 0.0, 100e6, 0.02)));
  EXPECT_TRUE(std::isnan(fct_slowdown(0.1, 1e6, 0.0, 0.02)));
  EXPECT_TRUE(std::isnan(fct_slowdown(-1.0, 1e6, 100e6, 0.02)));
}

// Asymmetric-population Jain cases that matter once mice share the link with
// elephants: tiny flows beside huge ones, idle flows beside busy ones.
TEST(JainAsymmetric, SingleFlowIsPerfectlyFair) {
  const std::vector<double> one = {42e6};
  EXPECT_DOUBLE_EQ(jain_index(one), 1.0);
}

TEST(JainAsymmetric, ZeroShareAmongNonzeroDragsTheIndexDown) {
  // {x, 0, 0}: J = x² / (3·x²) = 1/3, the floor for n = 3.
  const std::vector<double> v = {5e6, 0.0, 0.0};
  EXPECT_NEAR(jain_index(v), 1.0 / 3.0, 1e-12);
}

TEST(JainAsymmetric, MiceBesideAnElephantApproachTheFloor) {
  // One elephant at 90 Mbps and nine 100 kbps mice: J ≈ (Σ)²/(n·Σx²).
  std::vector<double> v = {90e6};
  for (int i = 0; i < 9; ++i) v.push_back(100e3);
  const double sum = 90e6 + 9 * 100e3;
  const double sumsq = 90e6 * 90e6 + 9 * 100e3 * 100e3;
  EXPECT_NEAR(jain_index(v), sum * sum / (10 * sumsq), 1e-12);
  EXPECT_LT(jain_index(v), 0.11);  // barely above the 1/n floor
}

TEST(JainAsymmetric, ScaleInvariant) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1e9, 2e9, 3e9};
  EXPECT_NEAR(jain_index(a), jain_index(b), 1e-12);
}

}  // namespace
}  // namespace elephant::metrics
