// Engine-swap determinism regression: the allocation-free event engine
// (inplace callbacks, per-port delay lines, re-armable timer slots, indexed
// 4-ary heap) must be bit-for-bit behaviour-preserving. These tests run a
// paper cell and a fault-injection cell with a fixed seed and compare the
// full flight-recorder trace digest and the final metrics digest against
// golden values captured from the pre-swap engine (binary heap of
// std::function entries, one heap event per packet per hop).
//
// To regenerate after an *intentional* behaviour change, run with
// ELEPHANT_PRINT_DIGESTS=1 and paste the printed values below — but any
// divergence should first be treated as a lost-determinism bug.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "exp/result_digest.hpp"
#include "exp/runner.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"

namespace elephant {
namespace {

struct CellDigest {
  std::uint64_t trace = 0;    ///< FNV-1a over every trace record, in order
  std::uint64_t metrics = 0;  ///< FNV-1a over the final ExperimentResult
  std::uint64_t records = 0;  ///< record count (localizes a digest mismatch)
};

CellDigest run_cell(exp::ExperimentConfig cfg,
                    obs::MetricsRegistry* metrics = nullptr) {
  trace::DigestSink sink;
  trace::Tracer tracer(sink, /*capacity=*/4096);
  cfg.tracer = &tracer;
  cfg.metrics = metrics;
  const exp::ExperimentResult res = exp::run_experiment(cfg);

  CellDigest d;
  d.trace = sink.digest();
  d.records = sink.count();
  // Final metrics via the shared fold (exp/result_digest.hpp) — the same
  // digest `elephant run --check-digest`, the snapshot round-trip tests, and
  // the explorer's replay verification compute, so golden values here pin
  // all of them. events_executed is deliberately excluded from that fold: it
  // counts engine-internal timer wakeups, which may legitimately change
  // across engine versions without the simulation behaving any differently.
  d.metrics = exp::metrics_digest(res);
  return d;
}

void check(const char* name, const CellDigest& got, const CellDigest& want) {
  if (std::getenv("ELEPHANT_PRINT_DIGESTS") != nullptr) {
    std::printf("golden %s = {0x%016llxull, 0x%016llxull, %lluull};\n", name,
                static_cast<unsigned long long>(got.trace),
                static_cast<unsigned long long>(got.metrics),
                static_cast<unsigned long long>(got.records));
    GTEST_SKIP() << "digest-print mode";
  }
  EXPECT_EQ(got.records, want.records) << name << ": trace record count drifted";
  EXPECT_EQ(got.trace, want.trace) << name << ": trace digest drifted";
  EXPECT_EQ(got.metrics, want.metrics) << name << ": final metrics drifted";
}

// A paper matrix cell: CUBIC vs BBRv1, FIFO, 1 BDP, 100 Mbps, 62 ms RTT.
exp::ExperimentConfig paper_cell() {
  exp::ExperimentConfig cfg;
  cfg.cca1 = cca::CcaKind::kCubic;
  cfg.cca2 = cca::CcaKind::kBbrV1;
  cfg.aqm = aqm::AqmKind::kFifo;
  cfg.buffer_bdp = 1.0;
  cfg.bottleneck_bps = 100e6;
  cfg.duration = sim::Time::seconds(5);
  cfg.seed = 20240817;
  return cfg;
}

// The same cell under a fault storm: a link flap, a bursty loss episode, and
// a jitter spike (the jitter window drives the per-port delay line onto its
// general-heap fallback mid-run).
exp::ExperimentConfig fault_cell() {
  exp::ExperimentConfig cfg = paper_cell();
  cfg.fault_plan = fault::FaultPlan::link_flap(sim::Time::seconds(1),
                                               sim::Time::milliseconds(120), 2);
  for (const fault::FaultEvent& e :
       fault::FaultPlan::loss_burst(sim::Time::seconds(2), 0.02, sim::Time::seconds(1))
           .events) {
    cfg.fault_plan.add(e);
  }
  for (const fault::FaultEvent& e :
       fault::FaultPlan::jitter_spike(sim::Time::seconds(3), sim::Time::milliseconds(2),
                                      sim::Time::seconds(1))
           .events) {
    cfg.fault_plan.add(e);
  }
  return cfg;
}

// Golden digests. The paper cell is captured from the PRE-SWAP engine and
// passed unchanged through the swap AND through the conditional-wake port
// rework: the unperturbed path is bit-identical across all three engines.
// The fault cell's trace digest has been re-baked twice, each time for a
// tie-instant observation shift with byte-identical packet behaviour:
//   0xc1429fac7222896d  pre-swap engine
//   0xd89f2f1f40645830  event-engine swap: a handful of same-nanosecond
//                       records permuted (delay-line timers draw their FIFO
//                       rank at head-rearm time, not per packet at push).
//   0xff3b7a2b69074069  conditional link-free wake: a packet arriving at
//                       exactly the instant the link frees now starts
//                       serializing immediately instead of waiting for the
//                       wake event's turn in the same-instant FIFO order, so
//                       13 kAqmEnqueue records observe a backlog exactly one
//                       packet smaller. Same (t, flow, seq) on every record,
//                       same record count, identical final-metrics digest —
//                       verified by a field-level diff of the full traces.
constexpr CellDigest kGoldenPaperCell = {0x715fc370d3642f49ull, 0xa1201808252779ebull,
                                         107850ull};
constexpr CellDigest kGoldenFaultCell = {0xff3b7a2b69074069ull, 0x9ff4cf27ff6a73c8ull,
                                         19068ull};

TEST(DeterminismDigest, PaperCellMatchesPreSwapEngine) {
  check("kGoldenPaperCell", run_cell(paper_cell()), kGoldenPaperCell);
}

TEST(DeterminismDigest, FaultCellMatchesGolden) {
  check("kGoldenFaultCell", run_cell(fault_cell()), kGoldenFaultCell);
}

// Telemetry is pure observation: attaching a metrics registry to the paper
// cell must leave the flight-recorder trace and final metrics bit-identical
// to the uninstrumented golden run. Any drift means an instrumentation hook
// leaked into simulation behaviour (extra events, RNG draws, reordering).
TEST(DeterminismDigest, PaperCellUnchangedWithTelemetryAttached) {
  obs::MetricsRegistry reg;
  check("kGoldenPaperCell", run_cell(paper_cell(), &reg), kGoldenPaperCell);
  // And the observation itself was live, not silently disabled.
  EXPECT_GT(reg.counter("sim.events").value(), 0u);
  EXPECT_GT(reg.histogram("queue.sojourn_s").count(), 0u);
  EXPECT_GT(reg.histogram("tcp.srtt_s").count(), 0u);
}

// Two runs of the same seeded cell in one process must digest identically —
// catches hidden global state (pool reuse order, static RNGs) regardless of
// golden freshness.
TEST(DeterminismDigest, RepeatedRunsAreBitIdentical) {
  const CellDigest a = run_cell(paper_cell());
  const CellDigest b = run_cell(paper_cell());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.records, b.records);
}

}  // namespace
}  // namespace elephant
