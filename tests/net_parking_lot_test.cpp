#include "net/parking_lot.hpp"

#include <gtest/gtest.h>

#include "tcp/flow.hpp"

namespace elephant::net {
namespace {

TEST(ParkingLot, RttsScaleWithHops) {
  sim::Scheduler sched;
  ParkingLotConfig cfg;
  cfg.hops = 3;
  ParkingLot pl(sched, cfg);
  // access 1 ms, hop 10 ms: long = 2*(2+30)=64 ms, cross = 2*(2+10)=24 ms.
  EXPECT_EQ(pl.long_rtt(), sim::Time::milliseconds(64));
  EXPECT_EQ(pl.cross_rtt(), sim::Time::milliseconds(24));
}

TEST(ParkingLot, LongPathDeliversEndToEnd) {
  sim::Scheduler sched;
  ParkingLotConfig cfg;
  cfg.hops = 3;
  cfg.bottleneck_bps = 100e6;
  ParkingLot pl(sched, cfg);
  tcp::FlowConfig fc;
  fc.id = 1;
  fc.cca = cca::CcaKind::kCubic;
  tcp::Flow flow(sched, pl.long_src(), pl.long_dst(), fc);
  flow.start();
  sched.run_until(sim::Time::seconds(10));
  EXPECT_GT(flow.goodput_bps(sim::Time::seconds(10)), 50e6);
  // Every hop carried the traffic.
  for (int i = 0; i < 3; ++i) EXPECT_GT(pl.bottleneck(i).tx_packets(), 1000u);
}

TEST(ParkingLot, CrossPathsAreLocal) {
  sim::Scheduler sched;
  ParkingLotConfig cfg;
  cfg.hops = 3;
  cfg.bottleneck_bps = 100e6;
  ParkingLot pl(sched, cfg);
  tcp::FlowConfig fc;
  fc.id = 1;
  fc.cca = cca::CcaKind::kCubic;
  tcp::Flow flow(sched, pl.cross_src(1), pl.cross_dst(1), fc);
  flow.start();
  sched.run_until(sim::Time::seconds(5));
  EXPECT_GT(flow.goodput_bps(sim::Time::seconds(5)), 50e6);
  // Only hop 1 carries it.
  EXPECT_GT(pl.bottleneck(1).tx_packets(), 1000u);
  EXPECT_EQ(pl.bottleneck(0).tx_packets(), 0u);
  EXPECT_EQ(pl.bottleneck(2).tx_packets(), 0u);
}

TEST(ParkingLot, LongFlowDisadvantagedAgainstCrossTraffic) {
  // The classic parking-lot result: the long flow crosses every contested
  // hop (and has the larger RTT), so it gets less than an equal share.
  sim::Scheduler sched;
  ParkingLotConfig cfg;
  cfg.hops = 3;
  cfg.bottleneck_bps = 100e6;
  cfg.buffer_bytes_per_hop = static_cast<std::size_t>(2 * 100e6 * 0.024 / 8);
  ParkingLot pl(sched, cfg);

  std::vector<std::unique_ptr<tcp::Flow>> flows;
  tcp::FlowConfig fc;
  fc.id = 1;
  fc.cca = cca::CcaKind::kCubic;
  fc.seed = 1;
  flows.push_back(std::make_unique<tcp::Flow>(sched, pl.long_src(), pl.long_dst(), fc));
  for (int i = 0; i < 3; ++i) {
    tcp::FlowConfig cc;
    cc.id = static_cast<FlowId>(2 + i);
    cc.cca = cca::CcaKind::kCubic;
    cc.seed = 100 + static_cast<std::uint64_t>(i);
    flows.push_back(
        std::make_unique<tcp::Flow>(sched, pl.cross_src(i), pl.cross_dst(i), cc));
  }
  for (auto& f : flows) f->start();
  sched.run_until(sim::Time::seconds(40));

  const double long_bps = flows[0]->goodput_bps(sim::Time::seconds(40));
  double cross_mean = 0;
  for (int i = 1; i <= 3; ++i) cross_mean += flows[i]->goodput_bps(sim::Time::seconds(40));
  cross_mean /= 3;
  EXPECT_LT(long_bps, cross_mean);
  EXPECT_GT(long_bps, 1e6);  // not starved either
}

TEST(ParkingLot, SingleHopDegeneratesToDumbbellish) {
  sim::Scheduler sched;
  ParkingLotConfig cfg;
  cfg.hops = 1;
  cfg.bottleneck_bps = 100e6;
  ParkingLot pl(sched, cfg);
  tcp::FlowConfig fc;
  fc.id = 1;
  fc.cca = cca::CcaKind::kReno;
  tcp::Flow flow(sched, pl.long_src(), pl.long_dst(), fc);
  flow.start();
  sched.run_until(sim::Time::seconds(5));
  EXPECT_GT(flow.goodput_bps(sim::Time::seconds(5)), 30e6);
}

}  // namespace
}  // namespace elephant::net
