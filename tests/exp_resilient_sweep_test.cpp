#include "exp/sweep.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "exp/manifest.hpp"
#include "test_util.hpp"

namespace elephant::exp {
namespace {

class ResilientSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("elephant_resilient_sweep_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::filesystem::path manifest_path() const { return dir_ / "sweep.jsonl"; }

  std::filesystem::path dir_;
};

/// `n` quick configs differing only in seed.
std::vector<ExperimentConfig> quick_batch(int n, double duration_s = 2) {
  std::vector<ExperimentConfig> configs;
  for (int i = 0; i < n; ++i) {
    auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                  aqm::AqmKind::kFifo, 2.0, 100e6, duration_s);
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    configs.push_back(cfg);
  }
  return configs;
}

/// An AQM kind the factory does not know: constructing the dumbbell throws
/// std::invalid_argument — the "deliberately faulting config".
ExperimentConfig poisoned_config() {
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kFifo, 2.0, 100e6, 2);
  cfg.aqm = static_cast<aqm::AqmKind>(99);
  return cfg;
}

TEST_F(ResilientSweepTest, ThrowingConfigIsIsolated) {
  auto configs = quick_batch(19, /*duration_s=*/1);
  configs.insert(configs.begin() + 7, poisoned_config());

  SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 2;
  const SweepReport report = run_sweep_resilient(configs, opts);

  ASSERT_EQ(report.records.size(), 20u);
  EXPECT_EQ(report.completed(), 19u);
  EXPECT_EQ(report.failed(), 1u);
  EXPECT_EQ(report.records[7].status, RunStatus::kFailed);
  EXPECT_FALSE(report.records[7].error.empty());
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    if (i == 7) continue;
    EXPECT_EQ(report.records[i].status, RunStatus::kOk) << "cell " << i;
    EXPECT_GT(report.records[i].result.utilization, 0.0) << "cell " << i;
  }
}

TEST_F(ResilientSweepTest, EventBudgetRecordsTimeoutWithoutRetry) {
  SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 1;
  opts.max_retries = 3;     // must NOT be spent on a deterministic budget trip
  opts.run_event_budget = 500;
  const SweepReport report = run_sweep_resilient(quick_batch(1), opts);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].status, RunStatus::kTimedOut);
  EXPECT_EQ(report.records[0].attempts, 1);
  EXPECT_NE(report.records[0].error.find("event budget"), std::string::npos);
}

TEST_F(ResilientSweepTest, FailuresAreRetriedWithReseed) {
  SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 1;
  opts.max_retries = 2;
  const SweepReport report = run_sweep_resilient({poisoned_config()}, opts);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].status, RunStatus::kFailed);
  EXPECT_EQ(report.records[0].attempts, 3);  // initial + 2 retries
}

TEST_F(ResilientSweepTest, ManifestLineRoundTrips) {
  ManifestEntry e;
  e.index = 17;
  e.id = "cubic_vs_cubic-fifo-bdp2-100M";
  e.status = RunStatus::kTimedOut;
  e.attempts = 2;
  e.repetitions = 3;
  e.sender_bps[0] = 4.25e7;
  e.sender_bps[1] = 3.1e7;
  e.jain2 = 0.987654321;
  e.utilization = 0.75;
  e.retx_segments = 12.5;
  e.rtos = 1;
  e.error = "budget \"tripped\"\nat t=1.5s \\ again";

  ManifestEntry back;
  ASSERT_TRUE(SweepManifest::parse_line(SweepManifest::format_line(e), &back));
  EXPECT_EQ(back.index, e.index);
  EXPECT_EQ(back.id, e.id);
  EXPECT_EQ(back.status, e.status);
  EXPECT_EQ(back.attempts, e.attempts);
  EXPECT_EQ(back.repetitions, e.repetitions);
  EXPECT_DOUBLE_EQ(back.sender_bps[0], e.sender_bps[0]);
  EXPECT_DOUBLE_EQ(back.sender_bps[1], e.sender_bps[1]);
  EXPECT_DOUBLE_EQ(back.jain2, e.jain2);
  EXPECT_DOUBLE_EQ(back.utilization, e.utilization);
  EXPECT_DOUBLE_EQ(back.retx_segments, e.retx_segments);
  EXPECT_DOUBLE_EQ(back.rtos, e.rtos);
  EXPECT_EQ(back.error, e.error);
}

TEST_F(ResilientSweepTest, ManifestClassBlockRoundTrips) {
  ManifestEntry e;
  e.index = 3;
  e.id = "cubic_vs_bbr-fifo-bdp1-100M-wl[mice]";
  e.status = RunStatus::kOk;
  e.attempts = 1;
  e.repetitions = 1;
  ClassResult elephants;
  elephants.name = "elephants";
  elephants.flows = 2;
  elephants.throughput_bps = 9.1e7;
  elephants.share = 0.91;
  elephants.jain = 0.97;
  ClassResult mice;
  mice.name = "mice";
  mice.flows = 40;
  mice.completed = 39;
  mice.throughput_bps = 8.2e6;
  mice.share = 0.09;
  mice.jain = 0.55;
  mice.fct_p50_s = 0.125;
  mice.fct_p95_s = 0.75;
  mice.fct_p99_s = 1.5;
  mice.fct_mean_s = 0.25;
  mice.slowdown_p50 = 2.25;
  mice.slowdown_p95 = 8.5;
  mice.slowdown_p99 = 17.0;
  e.classes = {elephants, mice};

  ManifestEntry back;
  ASSERT_TRUE(SweepManifest::parse_line(SweepManifest::format_line(e), &back));
  ASSERT_EQ(back.classes.size(), 2u);
  EXPECT_EQ(back.classes[0].name, "elephants");
  EXPECT_DOUBLE_EQ(back.classes[0].jain, 0.97);
  EXPECT_EQ(back.classes[1].name, "mice");
  EXPECT_EQ(back.classes[1].flows, 40u);
  EXPECT_EQ(back.classes[1].completed, 39u);
  EXPECT_DOUBLE_EQ(back.classes[1].throughput_bps, 8.2e6);
  EXPECT_DOUBLE_EQ(back.classes[1].share, 0.09);
  EXPECT_DOUBLE_EQ(back.classes[1].fct_p50_s, 0.125);
  EXPECT_DOUBLE_EQ(back.classes[1].fct_p95_s, 0.75);
  EXPECT_DOUBLE_EQ(back.classes[1].fct_p99_s, 1.5);
  EXPECT_DOUBLE_EQ(back.classes[1].fct_mean_s, 0.25);
  EXPECT_DOUBLE_EQ(back.classes[1].slowdown_p50, 2.25);
  EXPECT_DOUBLE_EQ(back.classes[1].slowdown_p99, 17.0);
}

TEST_F(ResilientSweepTest, ElephantOnlyManifestLineHasNoClassesBlock) {
  // Elephant-only cells must keep the exact pre-workload journal format so
  // old manifests stay resumable and diffs stay trivial.
  ManifestEntry e;
  e.index = 0;
  e.id = "cell-a";
  e.status = RunStatus::kOk;
  EXPECT_EQ(SweepManifest::format_line(e).find("classes"), std::string::npos);
}

TEST_F(ResilientSweepTest, ManifestLoadToleratesTornTailAndKeepsLatest) {
  ManifestEntry first;
  first.index = 0;
  first.id = "cell-a";
  first.status = RunStatus::kFailed;
  ManifestEntry second = first;
  second.status = RunStatus::kOk;  // later line for the same id supersedes
  ManifestEntry other;
  other.index = 1;
  other.id = "cell-b";
  other.status = RunStatus::kOk;

  {
    std::ofstream out(manifest_path());
    out << SweepManifest::format_line(first) << '\n'
        << SweepManifest::format_line(other) << '\n'
        << SweepManifest::format_line(second) << '\n'
        << R"({"i":2,"id":"cell-c","status":"ok","attempts)";  // torn mid-write
  }
  const auto entries = SweepManifest::load(manifest_path());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.at("cell-a").status, RunStatus::kOk);
  EXPECT_EQ(entries.at("cell-b").status, RunStatus::kOk);
  EXPECT_EQ(entries.count("cell-c"), 0u);
}

TEST_F(ResilientSweepTest, SweepJournalsEveryCell) {
  auto configs = quick_batch(3);
  configs.push_back(poisoned_config());
  SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 1;
  opts.manifest_path = manifest_path();
  (void)run_sweep_resilient(configs, opts);

  const auto entries = SweepManifest::load(manifest_path());
  ASSERT_EQ(entries.size(), 4u);
  int ok = 0;
  int failed = 0;
  for (const auto& [id, e] : entries) (e.success() ? ok : failed)++;
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(failed, 1);
}

TEST_F(ResilientSweepTest, ResumeSkipsJournaledCellsAndRerunsFailures) {
  auto configs = quick_batch(4);
  SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 1;
  opts.manifest_path = manifest_path();
  const SweepReport first = run_sweep_resilient(configs, opts);
  ASSERT_EQ(first.completed(), 4u);

  // Simulate a kill after two cells: keep only their journal lines, and mark
  // one surviving cell as failed so resume must re-attempt it.
  auto entries = SweepManifest::load(manifest_path());
  std::filesystem::remove(manifest_path());
  {
    SweepManifest rewritten(manifest_path());
    ManifestEntry kept_ok = entries.at(configs[0].id());
    ManifestEntry kept_failed = entries.at(configs[1].id());
    kept_failed.status = RunStatus::kFailed;
    kept_failed.error = "killed";
    rewritten.append(kept_ok);
    rewritten.append(kept_failed);
  }

  opts.resume = true;
  const SweepReport second = run_sweep_resilient(configs, opts);
  ASSERT_EQ(second.records.size(), 4u);
  // Cell 0: satisfied from the journal, zero simulation attempts.
  EXPECT_TRUE(second.records[0].resumed);
  EXPECT_EQ(second.records[0].attempts, 0);
  // Cell 1 (journaled as failed) and cells 2-3 (no journal line): re-run.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(second.records[i].resumed) << "cell " << i;
    EXPECT_EQ(second.records[i].attempts, 1) << "cell " << i;
    EXPECT_EQ(second.records[i].status, RunStatus::kOk) << "cell " << i;
  }
  // The resumed cell's numbers come back from the journal intact.
  EXPECT_DOUBLE_EQ(second.records[0].result.utilization,
                   first.records[0].result.utilization);
  // And the journal now shows the re-run superseding the failure.
  const auto after = SweepManifest::load(manifest_path());
  EXPECT_EQ(after.at(configs[1].id()).status, RunStatus::kOk);
}

TEST_F(ResilientSweepTest, LegacyRunSweepLeavesDefaultResultForFailedCell) {
  auto configs = quick_batch(2);
  configs.push_back(poisoned_config());
  SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 1;
  const auto results = run_sweep(configs, opts);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_GT(results[0].utilization, 0.0);
  EXPECT_GT(results[1].utilization, 0.0);
  EXPECT_EQ(results[2].repetitions, 0);  // failed cell: default-constructed
}

TEST_F(ResilientSweepTest, BackoffIsDeterministicJitteredAndExponential) {
  // Same (seed, attempt) → same delay, always within [0.5, 1.5)·base·2^(k-1).
  const double d1 = retry_backoff_s(42, 1, 0.25);
  EXPECT_DOUBLE_EQ(d1, retry_backoff_s(42, 1, 0.25));
  EXPECT_GE(d1, 0.125);
  EXPECT_LT(d1, 0.375);
  const double d2 = retry_backoff_s(42, 2, 0.25);
  EXPECT_GE(d2, 0.25);
  EXPECT_LT(d2, 0.75);
  // Different seeds decorrelate, and the degenerate inputs cost nothing.
  EXPECT_NE(retry_backoff_s(42, 1, 0.25), retry_backoff_s(43, 1, 0.25));
  EXPECT_EQ(retry_backoff_s(42, 0, 0.25), 0.0);
  EXPECT_EQ(retry_backoff_s(42, 1, 0.0), 0.0);
}

TEST_F(ResilientSweepTest, UnusableManifestFailsLoudly) {
  // A regular file where the manifest's parent directory should be: both
  // create_directories and open fail, and the sweep must refuse to start.
  std::ofstream(dir_ / "blocker") << "not a directory";
  SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 1;
  opts.manifest_path = dir_ / "blocker" / "m.jsonl";
  EXPECT_THROW((void)run_sweep_resilient(quick_batch(1), opts), std::runtime_error);
}

TEST_F(ResilientSweepTest, AppendRepairsTornTailBeforeWriting) {
  // A crashed writer leaves an unterminated fragment. The next append must
  // terminate it first — otherwise the two lines merge and both are lost.
  {
    std::ofstream out(manifest_path());
    out << R"({"i":0,"id":"torn","status":"ok","atte)";  // no newline
  }
  {
    SweepManifest m(manifest_path());
    ManifestEntry e;
    e.index = 1;
    e.id = "cell-b";
    e.status = RunStatus::kOk;
    m.append(e);
    ASSERT_TRUE(m.ok());
  }
  const auto entries = SweepManifest::load(manifest_path());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.count("cell-b"), 1u);  // survived the torn neighbor
}

TEST_F(ResilientSweepTest, PreSetCancelSkipsEveryCell) {
  std::atomic<bool> cancel{true};
  SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 2;
  opts.cancel = &cancel;
  const SweepReport report = run_sweep_resilient(quick_batch(3), opts);
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.skipped(), 3u);
  for (const RunRecord& rec : report.records) {
    EXPECT_EQ(rec.status, RunStatus::kSkipped);
    EXPECT_FALSE(rec.success());
    EXPECT_NE(rec.error.find("not attempted"), std::string::npos);
  }
}

TEST_F(ResilientSweepTest, LeasedSweepMatchesPlainSweepResults) {
  // The lease machinery must be invisible to a single worker: identical
  // simulation outcomes, and a journal whose folded view is the same.
  auto configs = quick_batch(3);
  SweepOptions plain;
  plain.use_cache = false;
  plain.threads = 1;
  plain.lease_s = 0;  // journal-only path
  plain.manifest_path = dir_ / "plain.jsonl";
  const SweepReport a = run_sweep_resilient(configs, plain);

  SweepOptions leased = plain;
  leased.lease_s = 60;
  leased.worker_id = "w0";
  leased.manifest_path = dir_ / "leased.jsonl";
  const SweepReport b = run_sweep_resilient(configs, leased);

  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].status, b.records[i].status) << i;
    EXPECT_DOUBLE_EQ(a.records[i].result.jain2, b.records[i].result.jain2) << i;
    EXPECT_DOUBLE_EQ(a.records[i].result.utilization, b.records[i].result.utilization)
        << i;
  }
  const auto fa = SweepManifest::load(plain.manifest_path);
  const auto fb = SweepManifest::load(leased.manifest_path);
  ASSERT_EQ(fa.size(), fb.size());
  for (const auto& [id, ea] : fa) {
    EXPECT_DOUBLE_EQ(ea.jain2, fb.at(id).jain2) << id;
    EXPECT_EQ(fb.at(id).status, RunStatus::kOk) << id;
  }
}

TEST_F(ResilientSweepTest, TwoInProcessWorkersShareOneManifest) {
  // Two run_sweep_resilient calls (distinct worker ids) attacking the same
  // manifest concurrently: every cell exactly once across the union.
  auto configs = quick_batch(6, /*duration_s=*/1);
  auto run_worker = [&](const std::string& id, SweepReport* out) {
    SweepOptions opts;
    opts.use_cache = false;
    opts.threads = 1;
    opts.manifest_path = manifest_path();
    opts.resume = true;
    opts.worker_id = id;
    opts.lease_s = 60;
    *out = run_sweep_resilient(configs, opts);
  };
  SweepReport ra;
  SweepReport rb;
  std::thread ta(run_worker, "wa", &ra);
  std::thread tb(run_worker, "wb", &rb);
  ta.join();
  tb.join();

  // Both reports must surface every cell as a success (own run or folded
  // from the journal), and the journal exactly one completion per cell.
  for (const SweepReport* r : {&ra, &rb}) {
    ASSERT_EQ(r->records.size(), 6u);
    EXPECT_EQ(r->completed() , 6u);
  }
  std::size_t ran_a = 0;
  std::size_t ran_b = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    ran_a += ra.records[i].resumed ? 0 : 1;
    ran_b += rb.records[i].resumed ? 0 : 1;
  }
  EXPECT_EQ(ran_a + ran_b, 6u);
  const auto entries = SweepManifest::load(manifest_path());
  ASSERT_EQ(entries.size(), 6u);
  for (const auto& [id, e] : entries) EXPECT_TRUE(e.success()) << id;
}

TEST_F(ResilientSweepTest, ReportCountsByStatus) {
  SweepReport report;
  report.records.resize(5);
  report.records[0].status = RunStatus::kOk;
  report.records[1].status = RunStatus::kRetried;
  report.records[2].status = RunStatus::kFailed;
  report.records[3].status = RunStatus::kTimedOut;
  report.records[4].status = RunStatus::kOk;
  EXPECT_EQ(report.count(RunStatus::kOk), 2u);
  EXPECT_EQ(report.completed(), 3u);
  EXPECT_EQ(report.failed(), 2u);
}

}  // namespace
}  // namespace elephant::exp
