#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"

namespace elephant::obs {
namespace {

TEST(MetricsRegistry, FindOrCreateReturnsStableIdentity) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("sim.events");
  Counter& c2 = reg.counter("sim.events");
  EXPECT_EQ(&c1, &c2);
  Gauge& g1 = reg.gauge("sim.heap_depth");
  Gauge& g2 = reg.gauge("sim.heap_depth");
  EXPECT_EQ(&g1, &g2);
  LogLinHistogram& h1 = reg.histogram("queue.sojourn_s");
  LogLinHistogram& h2 = reg.histogram("queue.sojourn_s");
  EXPECT_EQ(&h1, &h2);

  // References stay valid after further registrations (node stability).
  for (int i = 0; i < 100; ++i) {
    (void)reg.counter("filler." + std::to_string(i));
  }
  c1.add(7);
  EXPECT_EQ(reg.counter("sim.events").value(), 7u);
}

TEST(MetricsRegistry, NamespacesAreIndependent) {
  MetricsRegistry reg;
  reg.counter("x").add(1);
  reg.gauge("x").set(2.5);
  reg.histogram("x").record(3.0);
  EXPECT_EQ(reg.counter("x").value(), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("x").value(), 2.5);
  EXPECT_EQ(reg.histogram("x").count(), 1u);
}

TEST(MetricsRegistry, CounterIsSafeUnderConcurrentWriters) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(MetricsRegistry, MergeFromAddsCountersOverwritesGaugesMergesHistograms) {
  MetricsRegistry dst;
  dst.counter("sim.events").add(10);
  dst.gauge("tcp.cwnd_segments").set(4.0);
  dst.histogram("tcp.srtt_s").record(0.010);

  MetricsRegistry src;
  src.counter("sim.events").add(5);
  src.counter("runs.completed").add(1);  // new name appears in dst
  src.gauge("tcp.cwnd_segments").set(9.0);
  src.histogram("tcp.srtt_s").record(0.030);

  dst.merge_from(src);
  EXPECT_EQ(dst.counter("sim.events").value(), 15u);
  EXPECT_EQ(dst.counter("runs.completed").value(), 1u);
  EXPECT_DOUBLE_EQ(dst.gauge("tcp.cwnd_segments").value(), 9.0);
  EXPECT_EQ(dst.histogram("tcp.srtt_s").count(), 2u);
  EXPECT_DOUBLE_EQ(dst.histogram("tcp.srtt_s").min(), 0.010);
  EXPECT_DOUBLE_EQ(dst.histogram("tcp.srtt_s").max(), 0.030);
  // Source is untouched.
  EXPECT_EQ(src.counter("sim.events").value(), 5u);
}

TEST(ScopedTimer, RecordsOneSampleAndNullIsInert) {
  LogLinHistogram h;
  {
    ScopedTimer t(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
  {
    ScopedTimer t(nullptr);  // must not crash or record anywhere
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Export, PrometheusTextHasTypedSanitizedMetrics) {
  MetricsRegistry reg;
  reg.counter("queue.dropped_overflow").add(3);
  reg.gauge("sim.heap_depth").set(12);
  LogLinHistogram& h = reg.histogram("queue.sojourn_s");
  for (int i = 1; i <= 100; ++i) h.record(0.001 * i);

  std::string out;
  write_prometheus(reg, &out);

  // Dots sanitized, types declared, quantiles present.
  EXPECT_NE(out.find("# TYPE queue_dropped_overflow counter"), std::string::npos);
  EXPECT_NE(out.find("queue_dropped_overflow 3"), std::string::npos);
  EXPECT_NE(out.find("# TYPE sim_heap_depth gauge"), std::string::npos);
  EXPECT_NE(out.find("# TYPE queue_sojourn_s summary"), std::string::npos);
  EXPECT_NE(out.find("queue_sojourn_s{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(out.find("queue_sojourn_s{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(out.find("queue_sojourn_s_count 100"), std::string::npos);
  EXPECT_EQ(out.find("queue.sojourn_s"), std::string::npos);  // no raw dots
}

TEST(Export, JsonSnapshotHasAllSectionsAndOmitsHistogramsOnRequest) {
  MetricsRegistry reg;
  reg.counter("sim.events").add(42);
  reg.gauge("sim.sim_s_per_wall_s").set(123.5);
  reg.histogram("sweep.cell_wall_s").record(1.5);

  std::string full;
  append_json(reg, &full, /*include_histograms=*/true);
  EXPECT_EQ(full.front(), '{');
  EXPECT_EQ(full.back(), '}');
  EXPECT_NE(full.find("\"counters\":{\"sim.events\":42}"), std::string::npos);
  EXPECT_NE(full.find("\"sim.sim_s_per_wall_s\":123.5"), std::string::npos);
  EXPECT_NE(full.find("\"sweep.cell_wall_s\":{\"count\":1"), std::string::npos);

  std::string lean;
  append_json(reg, &lean, /*include_histograms=*/false);
  EXPECT_EQ(lean.find("histograms"), std::string::npos);
  EXPECT_NE(lean.find("\"counters\""), std::string::npos);
}

TEST(Export, JsonEscapingHandlesQuotesBackslashesAndControls) {
  std::string out;
  append_json_escaped("a\"b\\c\n\t\x01", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST(Export, EmptyRegistrySnapshotsAreWellFormed) {
  MetricsRegistry reg;
  std::string json;
  append_json(reg, &json);
  EXPECT_EQ(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  std::string prom;
  write_prometheus(reg, &prom);
  EXPECT_TRUE(prom.empty());
}

}  // namespace
}  // namespace elephant::obs
