#pragma once

#include <memory>
#include <vector>

#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"

namespace elephant::test {

/// A data packet of `size` bytes for queue-disc tests.
[[nodiscard]] net::Packet make_packet(net::FlowId flow, std::uint64_t seq,
                                      std::uint32_t size = 8900);

/// A quick, small experiment config for integration tests: low bandwidth so
/// wall time stays negligible, cache disabled by the caller.
[[nodiscard]] exp::ExperimentConfig quick_config(cca::CcaKind cca1, cca::CcaKind cca2,
                                                 aqm::AqmKind aqm, double buffer_bdp = 2.0,
                                                 double bw = 100e6, double duration_s = 30);

/// run_experiment without touching the global on-disk cache.
[[nodiscard]] exp::ExperimentResult run_uncached(const exp::ExperimentConfig& cfg);

}  // namespace elephant::test
