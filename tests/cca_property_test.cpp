#include <gtest/gtest.h>

#include <memory>

#include "cca/congestion_control.hpp"

namespace elephant::cca {
namespace {

/// Behavioural invariants that must hold for EVERY congestion controller,
/// driven through synthetic ack/loss/RTO sequences.
class CcaInvariants : public ::testing::TestWithParam<CcaKind> {
 protected:
  std::unique_ptr<CongestionControl> make() { return make_cca(GetParam(), CcaParams{}); }

  static AckSample ack(double t, double acked = 10, double rate = 1000,
                       bool round = false, double inflight = 50) {
    AckSample a;
    a.now = sim::Time::seconds(t);
    a.rtt = sim::Time::milliseconds(62);
    a.min_rtt = a.rtt;
    a.acked_segments = acked;
    a.delivery_rate = rate;
    a.round_start = round;
    a.inflight_segments = inflight;
    return a;
  }

  static LossSample loss(double t, double lost = 5, bool new_event = true) {
    LossSample l;
    l.now = sim::Time::seconds(t);
    l.lost_segments = lost;
    l.inflight_segments = 50;
    l.new_congestion_event = new_event;
    return l;
  }
};

TEST_P(CcaInvariants, CwndAlwaysPositive) {
  auto cc = make();
  double delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    const double t = 0.01 * i;
    if (i % 7 == 3) cc->on_loss(loss(t, 10, i % 21 == 3));
    if (i % 50 == 49) cc->on_rto(sim::Time::seconds(t));
    AckSample a = ack(t, 5, 500, i % 10 == 0);
    delivered += 5;
    a.delivered_segments = delivered;
    cc->on_ack(a);
    ASSERT_GE(cc->cwnd_segments(), 1.0) << cc->name() << " step " << i;
    ASSERT_LT(cc->cwnd_segments(), 1e9) << cc->name() << " step " << i;
  }
}

TEST_P(CcaInvariants, GrowsWithoutCongestion) {
  auto cc = make();
  const double w0 = cc->cwnd_segments();
  double delivered = 0;
  for (int i = 0; i < 200; ++i) {
    AckSample a = ack(0.062 * i, 10, 2000, i % 5 == 0, 40);
    delivered += 10;
    a.delivered_segments = delivered;
    cc->on_ack(a);
  }
  EXPECT_GT(cc->cwnd_segments(), w0) << cc->name();
}

TEST_P(CcaInvariants, RtoNeverIncreasesWindow) {
  auto cc = make();
  double delivered = 0;
  for (int i = 0; i < 100; ++i) {
    AckSample a = ack(0.062 * i, 10, 2000, i % 5 == 0);
    delivered += 10;
    a.delivered_segments = delivered;
    cc->on_ack(a);
  }
  const double before = cc->cwnd_segments();
  cc->on_rto(sim::Time::seconds(10));
  EXPECT_LE(cc->cwnd_segments(), before) << cc->name();
}

TEST_P(CcaInvariants, PacingRateNonNegative) {
  auto cc = make();
  double delivered = 0;
  for (int i = 0; i < 300; ++i) {
    AckSample a = ack(0.01 * i, 5, 800, i % 12 == 0);
    delivered += 5;
    a.delivered_segments = delivered;
    cc->on_ack(a);
    ASSERT_GE(cc->pacing_rate_bps(), 0.0) << cc->name();
  }
}

TEST_P(CcaInvariants, ZeroAckedIsIgnoredSafely) {
  auto cc = make();
  const double w0 = cc->cwnd_segments();
  cc->on_ack(ack(1.0, /*acked=*/0));
  EXPECT_DOUBLE_EQ(cc->cwnd_segments(), w0) << cc->name();
}

TEST_P(CcaInvariants, NameIsStable) {
  auto cc = make();
  EXPECT_EQ(cc->name(), to_string(GetParam()));
}

TEST_P(CcaInvariants, FactoryProducesIndependentInstances) {
  auto a = make_cca(GetParam(), CcaParams{});
  auto b = make_cca(GetParam(), CcaParams{});
  double delivered = 0;
  for (int i = 0; i < 50; ++i) {
    AckSample s = ack(0.062 * i, 10, 1000, i % 5 == 0);
    delivered += 10;
    s.delivered_segments = delivered;
    a->on_ack(s);
  }
  // b untouched: still at initial window.
  EXPECT_DOUBLE_EQ(b->cwnd_segments(), CcaParams{}.initial_cwnd_segments);
  EXPECT_NE(a->cwnd_segments(), b->cwnd_segments());
}

INSTANTIATE_TEST_SUITE_P(AllCcas, CcaInvariants,
                         ::testing::Values(CcaKind::kReno, CcaKind::kCubic, CcaKind::kHtcp,
                                           CcaKind::kBbrV1, CcaKind::kBbrV2),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace elephant::cca
