#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace elephant::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::milliseconds(30), [&] { order.push_back(3); });
  s.schedule_at(Time::milliseconds(10), [&] { order.push_back(1); });
  s.schedule_at(Time::milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Time::milliseconds(30));
}

TEST(Scheduler, SameTimeFifoOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(Time::milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  Time fired = Time::zero();
  s.schedule_at(Time::milliseconds(10), [&] {
    s.schedule_in(Time::milliseconds(5), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, Time::milliseconds(15));
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) s.schedule_in(Time::microseconds(1), chain);
  };
  s.schedule_in(Time::microseconds(1), chain);
  s.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.now(), Time::microseconds(100));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(Time::seconds(1), [&] { ++fired; });
  s.schedule_at(Time::seconds(3), [&] { ++fired; });
  s.run_until(Time::seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::seconds(2));
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, RunUntilAdvancesToDeadlineWhenIdle) {
  Scheduler s;
  s.run_until(Time::seconds(5));
  EXPECT_EQ(s.now(), Time::seconds(5));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_at(Time::milliseconds(1), [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler s;
  s.cancel(EventId{});
  s.cancel(EventId{999});
  bool fired = false;
  s.schedule_at(Time::milliseconds(1), [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CancelOneOfManyAtSameInstant) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(Time::milliseconds(1), [&] { ++fired; });
  const EventId id = s.schedule_at(Time::milliseconds(1), [&] { fired += 100; });
  s.schedule_at(Time::milliseconds(1), [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, ExecutedEventsCounter) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_in(Time::milliseconds(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(Scheduler, ClearDropsPending) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(Time::milliseconds(1), [&] { fired = true; });
  s.clear();
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, PendingCountExcludesCancelled) {
  Scheduler s;
  const EventId id = s.schedule_at(Time::milliseconds(1), [] {});
  s.schedule_at(Time::milliseconds(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(id);
  EXPECT_EQ(s.pending_events(), 1u);
}

// Regression: cancelling an id whose event already executed must be a no-op.
// The seed code inserted every cancelled id into the tombstone set without
// checking liveness, so stale cancels accumulated forever and made
// pending_events() (queue size minus tombstones, in size_t) wrap to huge
// values once tombstones outnumbered queued events.
TEST(Scheduler, CancelAfterExecutionDoesNotCorruptPendingCount) {
  Scheduler s;
  const EventId a = s.schedule_at(Time::milliseconds(1), [] {});
  const EventId b = s.schedule_at(Time::milliseconds(2), [] {});
  s.run();

  s.cancel(a);  // dead ids: both events already ran
  s.cancel(b);

  s.schedule_at(Time::milliseconds(3), [] {});
  EXPECT_EQ(s.pending_events(), 1u);  // seed: 1 - 2 wraps to SIZE_MAX
}

TEST(Scheduler, RepeatedStaleCancelsDoNotAccumulate) {
  Scheduler s;
  for (int round = 0; round < 50; ++round) {
    const EventId id = s.schedule_in(Time::microseconds(1), [] {});
    s.run();
    s.cancel(id);  // always after execution: must never leak a tombstone
    s.cancel(id);  // double-cancel of the same dead id, for good measure
  }
  EXPECT_EQ(s.pending_events(), 0u);
  s.schedule_in(Time::microseconds(1), [] {});
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, PendingReflectsEventLifecycle) {
  Scheduler s;
  const EventId id = s.schedule_at(Time::milliseconds(5), [] {});
  EXPECT_TRUE(s.pending(id));
  s.run();
  EXPECT_FALSE(s.pending(id));

  // A cancelled event stops being pending immediately.
  const EventId id2 = s.schedule_at(Time::milliseconds(10), [] {});
  s.cancel(id2);
  EXPECT_FALSE(s.pending(id2));

  // Ids that were never issued are not pending (and cancelling them is a
  // no-op even though their slots may be issued later).
  EXPECT_FALSE(s.pending(EventId{9999}));
  EXPECT_FALSE(s.pending(EventId{}));
}

TEST(Scheduler, PendingDistinguishesSameInstantEvents) {
  Scheduler s;
  // Three events at the same instant; the middle one checks liveness of
  // its neighbours mid-instant, exercising the seq watermark tie-break.
  EventId first{}, last{};
  bool first_pending_mid = true, last_pending_mid = false;
  first = s.schedule_at(Time::milliseconds(1), [] {});
  s.schedule_at(Time::milliseconds(1), [&] {
    first_pending_mid = s.pending(first);
    last_pending_mid = s.pending(last);
  });
  last = s.schedule_at(Time::milliseconds(1), [] {});
  s.run();
  EXPECT_FALSE(first_pending_mid);  // already executed at the same instant
  EXPECT_TRUE(last_pending_mid);    // not yet executed at the same instant
}

TEST(Scheduler, CancelledEventPurgeAdvancesWatermark) {
  Scheduler s;
  // A cancelled event at t=1 is purged (never executed). Ids from that
  // instant must still read as dead afterwards, and cancelling them again
  // must not leak tombstones.
  const EventId a = s.schedule_at(Time::milliseconds(1), [] {});
  s.schedule_at(Time::milliseconds(2), [] {});
  s.cancel(a);
  s.run();
  EXPECT_FALSE(s.pending(a));
  s.cancel(a);
  s.schedule_at(Time::milliseconds(3), [] {});
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, ClearInvalidatesOldIds) {
  Scheduler s;
  const EventId id = s.schedule_at(Time::milliseconds(1), [] {});
  s.clear();
  EXPECT_FALSE(s.pending(id));
  // Cancelling a pre-clear id must neither touch post-clear events nor leak
  // a tombstone (the epoch tag marks it dead outright).
  bool fired = false;
  s.schedule_at(Time::milliseconds(1), [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_TRUE(fired);
}

// --- same-instant ordering contract ----------------------------------------
//
// The (at, seq) FIFO tie-break is an explicit API contract (see the class
// comment in sim/scheduler.hpp), not an implementation accident: components
// rely on it for deterministic same-tick behavior (delayed-ACK vs data
// timers, delay-line ranks), the model checker enumerates tie sets in seq
// order, and debug builds assert it per fired event. These tests pin it for
// every arming path.

TEST(Scheduler, SameTickTimersFireInArmOrder) {
  Scheduler s;
  std::vector<int> order;
  Scheduler::TimerHandle a, b, c;
  a.init(s, [&] { order.push_back(0); });
  b.init(s, [&] { order.push_back(1); });
  c.init(s, [&] { order.push_back(2); });
  // Armed for the same tick in the order a, b, c — created order must not
  // matter, armed order must.
  const Time tick = Time::milliseconds(7);
  a.rearm(tick);
  b.rearm(tick);
  c.rearm(tick);
  s.run_until(tick);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Scheduler, RearmMovesTimerToBackOfItsInstant) {
  Scheduler s;
  std::vector<int> order;
  Scheduler::TimerHandle a, b;
  a.init(s, [&] { order.push_back(0); });
  b.init(s, [&] { order.push_back(1); });
  const Time tick = Time::milliseconds(7);
  a.rearm(tick);
  b.rearm(tick);
  // Re-arming a for the same tick redraws its FIFO rank: it now fires after
  // b, exactly as cancel + re-schedule would have ordered it.
  a.rearm(tick);
  s.run_until(tick);
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(Scheduler, SameTickOneShotsAndTimersInterleaveInArmOrder) {
  Scheduler s;
  std::vector<int> order;
  Scheduler::TimerHandle t1, t2;
  t1.init(s, [&] { order.push_back(1); });
  t2.init(s, [&] { order.push_back(3); });
  const Time tick = Time::milliseconds(2);
  s.schedule_at(tick, [&] { order.push_back(0); });
  t1.rearm(tick);
  s.schedule_at(tick, [&] { order.push_back(2); });
  t2.rearm(tick);
  s.run_until(tick);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Scheduler, LazyRearmDoesNotFireAtTheOldInstant) {
  Scheduler s;
  std::vector<int> order;
  Scheduler::TimerHandle t;
  t.init(s, [&] { order.push_back(1); });
  t.rearm(Time::milliseconds(5));
  // Pushing the deadline out leaves a stale heap entry behind (lazy re-key);
  // the old instant must fire only the one-shot, the new instant the timer.
  t.rearm(Time::milliseconds(9));
  s.schedule_at(Time::milliseconds(5), [&] { order.push_back(0); });
  s.run_until(Time::milliseconds(5));
  EXPECT_EQ(order, (std::vector<int>{0}));
  s.run_until(Time::milliseconds(9));
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace elephant::sim
