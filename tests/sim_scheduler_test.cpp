#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace elephant::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::milliseconds(30), [&] { order.push_back(3); });
  s.schedule_at(Time::milliseconds(10), [&] { order.push_back(1); });
  s.schedule_at(Time::milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Time::milliseconds(30));
}

TEST(Scheduler, SameTimeFifoOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(Time::milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  Time fired = Time::zero();
  s.schedule_at(Time::milliseconds(10), [&] {
    s.schedule_in(Time::milliseconds(5), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, Time::milliseconds(15));
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) s.schedule_in(Time::microseconds(1), chain);
  };
  s.schedule_in(Time::microseconds(1), chain);
  s.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.now(), Time::microseconds(100));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(Time::seconds(1), [&] { ++fired; });
  s.schedule_at(Time::seconds(3), [&] { ++fired; });
  s.run_until(Time::seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::seconds(2));
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, RunUntilAdvancesToDeadlineWhenIdle) {
  Scheduler s;
  s.run_until(Time::seconds(5));
  EXPECT_EQ(s.now(), Time::seconds(5));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_at(Time::milliseconds(1), [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler s;
  s.cancel(EventId{});
  s.cancel(EventId{999});
  bool fired = false;
  s.schedule_at(Time::milliseconds(1), [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CancelOneOfManyAtSameInstant) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(Time::milliseconds(1), [&] { ++fired; });
  const EventId id = s.schedule_at(Time::milliseconds(1), [&] { fired += 100; });
  s.schedule_at(Time::milliseconds(1), [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, ExecutedEventsCounter) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_in(Time::milliseconds(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(Scheduler, ClearDropsPending) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(Time::milliseconds(1), [&] { fired = true; });
  s.clear();
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, PendingCountExcludesCancelled) {
  Scheduler s;
  const EventId id = s.schedule_at(Time::milliseconds(1), [] {});
  s.schedule_at(Time::milliseconds(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(id);
  EXPECT_EQ(s.pending_events(), 1u);
}

}  // namespace
}  // namespace elephant::sim
