#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant {
namespace {

using cca::CcaKind;
using test::quick_config;
using test::run_uncached;

/// Paper §5.2 / Fig. 6: FQ_CODEL equalizes EVERY challenger against CUBIC.
class FqCodelEqualizes : public ::testing::TestWithParam<CcaKind> {};

TEST_P(FqCodelEqualizes, JainNearOneVsCubic) {
  auto cfg = quick_config(GetParam(), CcaKind::kCubic, aqm::AqmKind::kFqCodel, 2.0, 100e6,
                          40);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.jain2, 0.93) << cca::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllChallengers, FqCodelEqualizes,
                         ::testing::Values(CcaKind::kBbrV1, CcaKind::kBbrV2, CcaKind::kHtcp,
                                           CcaKind::kReno),
                         [](const auto& info) { return cca::to_string(info.param); });

/// Paper Fig. 7(a): with FIFO every intra-CCA pairing fills the link, also
/// at 500 Mb/s with Table 2's ten flows.
class FifoFillsAt500M : public ::testing::TestWithParam<CcaKind> {};

TEST_P(FifoFillsAt500M, Utilization) {
  auto cfg = quick_config(GetParam(), GetParam(), aqm::AqmKind::kFifo, 2.0, 500e6, 30);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.utilization, 0.85) << cca::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllCcas, FifoFillsAt500M,
                         ::testing::Values(CcaKind::kReno, CcaKind::kCubic, CcaKind::kHtcp,
                                           CcaKind::kBbrV1, CcaKind::kBbrV2),
                         [](const auto& info) { return cca::to_string(info.param); });

TEST(PaperClaims, BbrV1RetransmitsMoreThanEveryoneUnderRed) {
  // Table 3 RED rows: BBRv1's RR dwarfs all others.
  std::uint64_t bbr1_retx = 0;
  std::uint64_t max_other = 0;
  for (const CcaKind k : {CcaKind::kBbrV1, CcaKind::kBbrV2, CcaKind::kHtcp, CcaKind::kReno,
                          CcaKind::kCubic}) {
    auto cfg = quick_config(k, k, aqm::AqmKind::kRed, 2.0, 100e6, 30);
    const auto res = run_uncached(cfg);
    if (k == CcaKind::kBbrV1) {
      bbr1_retx = res.retx_segments;
    } else {
      max_other = std::max(max_other, res.retx_segments);
    }
  }
  EXPECT_GT(bbr1_retx, max_other);
}

TEST(PaperClaims, HtcpBeatsCubicUnderRed) {
  // Fig. 4(k)-(o): HTCP's rate estimation handles RED's random drops better
  // than CUBIC's multiplicative decrease.
  auto cfg = quick_config(CcaKind::kHtcp, CcaKind::kCubic, aqm::AqmKind::kRed, 2.0, 100e6,
                          60);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.sender_bps[0], res.sender_bps[1] * 0.9);
}

TEST(PaperClaims, HtcpCoexistsWithCubicInDeepFifoBuffers) {
  // Fig. 2(k)-(o) claims CUBIC gradually overtakes HTCP as FIFO buffers
  // deepen. Our HTCP (faithful unbounded quadratic alpha + Linux bandwidth
  // switch) retains a moderate edge instead — a documented deviation
  // (EXPERIMENTS.md): what we can assert is bounded coexistence, with the
  // bandwidth switch keeping CUBIC well away from starvation.
  auto deep = quick_config(CcaKind::kHtcp, CcaKind::kCubic, aqm::AqmKind::kFifo, 16.0,
                           100e6, 200);
  const auto res = run_uncached(deep);
  const double htcp_share = res.sender_bps[0] / (res.sender_bps[0] + res.sender_bps[1]);
  EXPECT_LT(htcp_share, 0.85);
  EXPECT_GT(res.sender_bps[1], 15e6);  // CUBIC keeps a real share
}

TEST(PaperClaims, RenoLosesGroundToCubicAsBuffersGrow) {
  // Fig. 2(p)-(t).
  auto shallow = quick_config(CcaKind::kReno, CcaKind::kCubic, aqm::AqmKind::kFifo, 1.0,
                              100e6, 200);
  auto deep = shallow;
  deep.buffer_bdp = 16;
  const auto res_shallow = run_uncached(shallow);
  const auto res_deep = run_uncached(deep);
  const auto share = [](const exp::ExperimentResult& r) {
    return r.sender_bps[0] / (r.sender_bps[0] + r.sender_bps[1]);
  };
  EXPECT_LT(share(res_deep), share(res_shallow) + 0.05);
  EXPECT_LT(share(res_deep), 0.5);
}

TEST(PaperClaims, Bbrv1DominatesRedAtAllBufferSizes) {
  // Fig. 4(a)-(e): regardless of buffer depth, BBRv1 over RED starves CUBIC.
  for (const double bdp : {0.5, 4.0, 16.0}) {
    auto cfg = quick_config(CcaKind::kBbrV1, CcaKind::kCubic, aqm::AqmKind::kRed, bdp,
                            100e6, 40);
    const auto res = run_uncached(cfg);
    EXPECT_GT(res.sender_bps[0], res.sender_bps[1]) << bdp << " BDP";
  }
}

TEST(PaperClaims, CubicRobustAloneUnderEveryAqm) {
  // §5.2 closing observation: intra-CUBIC is fair and effective under all
  // three AQMs.
  for (const auto aqm :
       {aqm::AqmKind::kFifo, aqm::AqmKind::kRed, aqm::AqmKind::kFqCodel}) {
    auto cfg = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm, 2.0, 100e6, 40);
    const auto res = run_uncached(cfg);
    EXPECT_GT(res.jain2, 0.9) << aqm::to_string(aqm);
    EXPECT_GT(res.utilization, 0.8) << aqm::to_string(aqm);
  }
}

}  // namespace
}  // namespace elephant
