// Snapshot/restore round trips: interrupting a run mid-flight — snapshot,
// deliberately run the live cell further to scramble its state, restore,
// resume — must produce results bit-identical to the uninterrupted run.
// Exercised across the three paper AQMs, all five CCAs, a fault-injected
// cell, and a finite-workload cell (whose completed flows walk the
// scoreboard teardown/slab-release path across the snapshot boundary).

#include <gtest/gtest.h>

#include <cstdint>

#include "exp/cell.hpp"
#include "exp/config.hpp"
#include "exp/result_digest.hpp"
#include "fault/fault.hpp"
#include "sim/snapshot.hpp"
#include "workload/workload.hpp"

namespace elephant {
namespace {

// Small, fast cells: 2 elephants over a 20 Mbps bottleneck for one second.
exp::ExperimentConfig tiny_cell() {
  exp::ExperimentConfig cfg;
  cfg.cca1 = cca::CcaKind::kCubic;
  cfg.cca2 = cca::CcaKind::kBbrV1;
  cfg.aqm = aqm::AqmKind::kFifo;
  cfg.buffer_bdp = 1.0;
  cfg.bottleneck_bps = 20e6;
  cfg.total_flows = 2;
  cfg.duration = sim::Time::seconds(1);
  cfg.seed = 20260809;
  return cfg;
}

std::uint64_t digest_uninterrupted(const exp::ExperimentConfig& cfg) {
  exp::Cell cell(cfg);
  return exp::metrics_digest(cell.run_to_completion());
}

/// Run to `snap_at`, snapshot, keep running the live cell (scrambling its
/// state past the snapshot point), restore, resume to the end. With
/// `by_events` the interruption lands on an executed-event boundary instead
/// of a deadline boundary — the mid-instant case a model checker's stepping
/// produces.
std::uint64_t digest_roundtrip(const exp::ExperimentConfig& cfg, bool by_events) {
  exp::Cell cell(cfg);
  if (by_events) {
    cell.run_chunk(/*max_events=*/20000);
  } else {
    cell.run_chunk(/*max_events=*/0, sim::Time::seconds(0.4));
  }
  const sim::Snapshot snap = cell.snapshot();
  const std::uint64_t hash_at_snap = cell.state_hash();

  // Scramble: advance the live cell well past the snapshot point.
  cell.run_chunk(/*max_events=*/30000);

  cell.restore(snap);
  EXPECT_EQ(cell.state_hash(), hash_at_snap) << "restore did not recreate the state";

  cell.run_chunk(/*max_events=*/0, cell.duration());
  return exp::metrics_digest(cell.finalize());
}

TEST(SnapshotRoundtrip, AllPaperAqms) {
  for (const aqm::AqmKind kind : exp::paper_aqms()) {
    exp::ExperimentConfig cfg = tiny_cell();
    cfg.aqm = kind;
    const std::uint64_t want = digest_uninterrupted(cfg);
    EXPECT_EQ(digest_roundtrip(cfg, /*by_events=*/false), want)
        << "aqm " << aqm::to_string(kind) << " (deadline interrupt)";
    EXPECT_EQ(digest_roundtrip(cfg, /*by_events=*/true), want)
        << "aqm " << aqm::to_string(kind) << " (event-budget interrupt)";
  }
}

TEST(SnapshotRoundtrip, AllCcas) {
  for (const cca::CcaKind kind :
       {cca::CcaKind::kReno, cca::CcaKind::kCubic, cca::CcaKind::kHtcp,
        cca::CcaKind::kBbrV1, cca::CcaKind::kBbrV2}) {
    exp::ExperimentConfig cfg = tiny_cell();
    cfg.cca1 = kind;  // vs the default CUBIC on side 2
    cfg.cca2 = cca::CcaKind::kCubic;
    const std::uint64_t want = digest_uninterrupted(cfg);
    EXPECT_EQ(digest_roundtrip(cfg, /*by_events=*/false), want)
        << "cca " << cca::to_string(kind) << " (deadline interrupt)";
    EXPECT_EQ(digest_roundtrip(cfg, /*by_events=*/true), want)
        << "cca " << cca::to_string(kind) << " (event-budget interrupt)";
  }
}

TEST(SnapshotRoundtrip, FaultInjectedCell) {
  exp::ExperimentConfig cfg = tiny_cell();
  cfg.fault_plan = fault::FaultPlan::link_flap(sim::Time::seconds(0.3),
                                               sim::Time::milliseconds(60), 2);
  for (const fault::FaultEvent& e :
       fault::FaultPlan::loss_burst(sim::Time::seconds(0.5), 0.03, sim::Time::seconds(0.3))
           .events) {
    cfg.fault_plan.add(e);
  }
  const std::uint64_t want = digest_uninterrupted(cfg);
  // The 0.4 s deadline interrupt lands between the flap and the loss burst;
  // the restored run must replay the remaining fault timeline identically.
  EXPECT_EQ(digest_roundtrip(cfg, /*by_events=*/false), want);
  EXPECT_EQ(digest_roundtrip(cfg, /*by_events=*/true), want);
}

TEST(SnapshotRoundtrip, FiniteWorkloadCell) {
  exp::ExperimentConfig cfg = tiny_cell();
  ASSERT_TRUE(workload::WorkloadSpec::from_name("mice-elephants", &cfg.workload));
  const std::uint64_t want = digest_uninterrupted(cfg);
  EXPECT_EQ(digest_roundtrip(cfg, /*by_events=*/false), want);
  EXPECT_EQ(digest_roundtrip(cfg, /*by_events=*/true), want);
}

// One snapshot, many restores — the DFS backtracking pattern: every restore
// must land on the identical state and replay to the identical result.
TEST(SnapshotRoundtrip, SnapshotIsRestorableRepeatedly) {
  const exp::ExperimentConfig cfg = tiny_cell();
  exp::Cell cell(cfg);
  cell.run_chunk(/*max_events=*/15000);
  const sim::Snapshot snap = cell.snapshot();

  std::uint64_t first_digest = 0;
  std::uint64_t first_hash = 0;
  for (int round = 0; round < 3; ++round) {
    cell.restore(snap);
    const std::uint64_t hash = cell.state_hash();
    cell.run_chunk(/*max_events=*/0, cell.duration());
    const std::uint64_t digest = exp::metrics_digest(cell.finalize());
    if (round == 0) {
      first_hash = hash;
      first_digest = digest;
    } else {
      EXPECT_EQ(hash, first_hash) << "restore " << round;
      EXPECT_EQ(digest, first_digest) << "restore " << round;
    }
  }
  EXPECT_EQ(first_digest, digest_uninterrupted(cfg));
}

}  // namespace
}  // namespace elephant
