#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "exp/runner.hpp"
#include "test_util.hpp"
#include "trace/codec.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"

namespace elephant::exp {
namespace {

using cca::CcaKind;

ExperimentConfig traced_config(trace::Tracer* tracer) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  cfg.total_flows = 4;
  cfg.tracer = tracer;
  return cfg;
}

TEST(TraceIntegration, TracedRunEmitsPerFlowCwndAndQueueDepthSeries) {
  trace::MemorySink sink;
  trace::Tracer tracer(sink, 1 << 12);
  const auto cfg = traced_config(&tracer);
  const auto res = test::run_uncached(cfg);
  ASSERT_EQ(res.n_flows, 4u);

  // run_experiment() flushes the tracer, so the sink already holds the run.
  const auto& records = sink.records();
  ASSERT_FALSE(records.empty());

  std::set<std::uint32_t> cwnd_flows;
  std::size_t queue_samples = 0;
  sim::Time last_queue_t = sim::Time::zero();
  for (const auto& r : records) {
    if (r.type == trace::RecordType::kCwndUpdate) cwnd_flows.insert(r.flow);
    if (r.type == trace::RecordType::kQueueDepth) {
      ++queue_samples;
      EXPECT_GE(r.t, last_queue_t);  // the periodic series is time-ordered
      last_queue_t = r.t;
      EXPECT_GE(r.v0, 0.0);                // backlog bytes
      EXPECT_GE(r.v2, 0.0);                // cumulative tx bytes
    }
  }
  // Every flow produced a cwnd time series.
  std::set<std::uint32_t> expected_flows;
  for (const auto& f : res.flows) expected_flows.insert(f.flow);
  EXPECT_EQ(cwnd_flows, expected_flows);
  // 5 s at the 100 ms default interval: one sample per interval, minus the
  // first (sampling starts one interval in).
  EXPECT_GE(queue_samples, 45u);
  EXPECT_LE(queue_samples, 50u);
  // Something traversed the bottleneck while we watched.
  EXPECT_GT(std::count_if(records.begin(), records.end(),
                          [](const trace::TraceRecord& r) {
                            return r.type == trace::RecordType::kAqmEnqueue;
                          }),
            0);
}

TEST(TraceIntegration, CsvAndJsonlRoundTripTheWholeRun) {
  trace::MemorySink memory;
  std::ostringstream csv_text;
  std::ostringstream jsonl_text;
  trace::CsvSink csv(csv_text);
  trace::JsonlSink jsonl(jsonl_text);
  trace::TeeSink tee({&memory, &csv, &jsonl});
  trace::Tracer tracer(tee, 1 << 10);  // small ring: forces mid-run drains
  // Only the series the acceptance criteria care about, to keep text small.
  tracer.enable_only({trace::RecordType::kCwndUpdate, trace::RecordType::kQueueDepth});
  const auto cfg = traced_config(&tracer);
  (void)test::run_uncached(cfg);

  const auto& truth = memory.records();
  ASSERT_FALSE(truth.empty());

  // CSV: header then one row per record, each parsing back bit-exact.
  {
    std::istringstream in(csv_text.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, trace::csv_header());
    std::size_t i = 0;
    while (std::getline(in, line)) {
      trace::TraceRecord r;
      ASSERT_TRUE(trace::parse_csv(line, &r)) << line;
      ASSERT_LT(i, truth.size());
      EXPECT_EQ(r, truth[i]) << "csv row " << i;
      ++i;
    }
    EXPECT_EQ(i, truth.size());
  }
  // JSONL: one object per line, same guarantee.
  {
    std::istringstream in(jsonl_text.str());
    std::string line;
    std::size_t i = 0;
    while (std::getline(in, line)) {
      trace::TraceRecord r;
      ASSERT_TRUE(trace::parse_jsonl(line, &r)) << line;
      ASSERT_LT(i, truth.size());
      EXPECT_EQ(r, truth[i]) << "jsonl row " << i;
      ++i;
    }
    EXPECT_EQ(i, truth.size());
  }
}

TEST(TraceIntegration, TracingIsObservational) {
  // Attaching a tracer must not change the experiment's outcome.
  trace::NullSink sink;
  trace::Tracer tracer(sink, 1 << 10);
  const auto traced_cfg = traced_config(&tracer);
  auto plain_cfg = traced_cfg;
  plain_cfg.tracer = nullptr;
  const auto traced = test::run_uncached(traced_cfg);
  const auto plain = test::run_uncached(plain_cfg);
  ASSERT_EQ(traced.flows.size(), plain.flows.size());
  for (std::size_t i = 0; i < traced.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(traced.flows[i].throughput_bps, plain.flows[i].throughput_bps);
  }
  EXPECT_DOUBLE_EQ(traced.jain2, plain.jain2);
  EXPECT_GT(tracer.recorded(), 0u);
}

TEST(TraceIntegration, RunAveragedBypassesCacheWhenTracing) {
  // A cache hit would skip the simulation and emit no trace; run_averaged
  // must therefore ignore the cache while a tracer is attached.
  trace::NullSink sink;
  trace::Tracer tracer(sink, 1 << 10);
  auto cfg = traced_config(&tracer);
  const auto avg = run_averaged(cfg, 1, /*use_cache=*/true);
  EXPECT_EQ(avg.repetitions, 1);
  EXPECT_GT(tracer.recorded(), 0u);
}

}  // namespace
}  // namespace elephant::exp
