#include "cca/windowed_filter.hpp"

#include <gtest/gtest.h>

namespace elephant::cca {
namespace {

TEST(WindowedFilter, MaxTracksBest) {
  MaxFilter<double, int> f(10, 0.0, 0);
  f.update(5, 1);
  EXPECT_DOUBLE_EQ(f.best(), 5);
  f.update(3, 2);
  EXPECT_DOUBLE_EQ(f.best(), 5);
  f.update(9, 3);
  EXPECT_DOUBLE_EQ(f.best(), 9);
}

TEST(WindowedFilter, MaxExpiresOldBest) {
  MaxFilter<double, int> f(10, 0.0, 0);
  f.update(100, 0);
  for (int t = 1; t <= 25; ++t) f.update(50, t);
  // The 100 sample is far outside the window: the best must now be 50.
  EXPECT_DOUBLE_EQ(f.best(), 50);
}

TEST(WindowedFilter, MinTracksLowest) {
  MinFilter<double, int> f(10, 1e9, 0);
  f.update(100, 1);
  f.update(40, 2);
  f.update(70, 3);
  EXPECT_DOUBLE_EQ(f.best(), 40);
}

TEST(WindowedFilter, MinExpires) {
  MinFilter<double, int> f(10, 1e9, 0);
  f.update(5, 0);
  for (int t = 1; t <= 25; ++t) f.update(20, t);
  EXPECT_DOUBLE_EQ(f.best(), 20);
}

TEST(WindowedFilter, SecondBestPromoted) {
  MaxFilter<double, int> f(10, 0.0, 0);
  f.update(100, 0);
  f.update(80, 5);   // second best, newer
  f.update(60, 11);  // 100 expires (age 11 > 10): 80 should take over
  EXPECT_DOUBLE_EQ(f.best(), 80);
}

TEST(WindowedFilter, ResetReplacesEverything) {
  MaxFilter<double, int> f(10, 0.0, 0);
  f.update(100, 0);
  f.reset(7, 50);
  EXPECT_DOUBLE_EQ(f.best(), 7);
  EXPECT_DOUBLE_EQ(f.second_best(), 7);
  EXPECT_DOUBLE_EQ(f.third_best(), 7);
}

TEST(WindowedFilter, MonotoneDecreasingStillTracked) {
  MaxFilter<double, int> f(8, 0.0, 0);
  // Bandwidth fading away: filter must follow downward once samples age out.
  for (int t = 0; t < 50; ++t) f.update(100.0 - t, t);
  EXPECT_LT(f.best(), 100.0);
  EXPECT_GE(f.best(), 100.0 - 50);
}

}  // namespace
}  // namespace elephant::cca
