#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant {
namespace {

using cca::CcaKind;
using test::quick_config;
using test::run_uncached;

/// Single-CCA runs at 100 Mb/s with 2 flows (one per sender): every CCA must
/// fill most of the pipe, the most basic sanity property of the whole stack.
class SingleCcaUtilization : public ::testing::TestWithParam<CcaKind> {};

TEST_P(SingleCcaUtilization, FillsBottleneckWithFifo) {
  auto cfg = quick_config(GetParam(), GetParam(), aqm::AqmKind::kFifo, 2.0, 100e6, 30);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.utilization, 0.80) << "CCA " << cca::to_string(GetParam());
  EXPECT_LE(res.utilization, 1.05);
}

INSTANTIATE_TEST_SUITE_P(AllCcas, SingleCcaUtilization,
                         ::testing::Values(CcaKind::kReno, CcaKind::kCubic, CcaKind::kHtcp,
                                           CcaKind::kBbrV1, CcaKind::kBbrV2),
                         [](const auto& info) { return cca::to_string(info.param); });

TEST(SingleFlow, ThroughputNeverExceedsBottleneck) {
  auto cfg = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 4.0,
                          100e6, 20);
  const auto res = run_uncached(cfg);
  for (const auto& f : res.flows) {
    EXPECT_LE(f.throughput_bps, 100e6 * 1.01);
  }
}

TEST(SingleFlow, SrttReflectsPathRtt) {
  auto cfg = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 0.5,
                          100e6, 20);
  const auto res = run_uncached(cfg);
  for (const auto& f : res.flows) {
    EXPECT_GE(f.srtt_ms, 61.0);
    // 0.5 BDP buffer bounds queueing delay to ~31 ms.
    EXPECT_LE(f.srtt_ms, 62.0 + 32.0);
  }
}

TEST(SingleFlow, DeepBufferInflatesRttForLossBased) {
  // CUBIC keeps deep FIFO buffers full (bufferbloat): srtt >> base RTT.
  auto cfg = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 8.0,
                          100e6, 30);
  const auto res = run_uncached(cfg);
  double max_srtt = 0;
  for (const auto& f : res.flows) max_srtt = std::max(max_srtt, f.srtt_ms);
  EXPECT_GT(max_srtt, 150.0);
}

TEST(SingleFlow, BbrV1KeepsQueuesShortInDeepBuffers) {
  // BBR's 2×BDP inflight cap: even with an 8 BDP buffer the standing queue
  // stays around 1×BDP, so srtt stays near 2×base RTT.
  auto cfg = quick_config(CcaKind::kBbrV1, CcaKind::kBbrV1, aqm::AqmKind::kFifo, 8.0,
                          100e6, 30);
  const auto res = run_uncached(cfg);
  for (const auto& f : res.flows) {
    EXPECT_LT(f.srtt_ms, 62.0 * 3.0);
  }
}

TEST(SingleFlow, FlowCountsMatchTable2Spec) {
  auto cfg = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                          100e6, 5);
  const auto res = run_uncached(cfg);
  EXPECT_EQ(res.flows.size(), 2u);

  cfg.total_flows = 10;
  const auto res10 = run_uncached(cfg);
  EXPECT_EQ(res10.flows.size(), 10u);
}

TEST(SingleFlow, ResultAccountingConsistent) {
  auto cfg = quick_config(CcaKind::kReno, CcaKind::kReno, aqm::AqmKind::kFifo, 2.0, 100e6,
                          20);
  const auto res = run_uncached(cfg);
  double sum = 0;
  for (const auto& f : res.flows) sum += f.throughput_bps;
  EXPECT_NEAR(res.sender_bps[0] + res.sender_bps[1], sum, 1.0);
  EXPECT_NEAR(res.utilization, sum / 100e6, 1e-9);
  EXPECT_GT(res.events_executed, 0u);
}

}  // namespace
}  // namespace elephant
