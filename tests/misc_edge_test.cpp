#include <gtest/gtest.h>

#include "aqm/fq_codel.hpp"
#include "exp/config.hpp"
#include "sim/time.hpp"
#include "test_util.hpp"

namespace elephant {
namespace {

TEST(BwLabel, FractionalGigabits) {
  EXPECT_EQ(exp::bw_label(2.5e9), "2.5G");
  EXPECT_EQ(exp::bw_label(40e9), "40G");
  EXPECT_EQ(exp::bw_label(1e6), "1M");
}

TEST(TimeToString, NegativeDurations) {
  const auto d = sim::Time::milliseconds(-5);
  EXPECT_EQ(d.to_string(), "-5ms");
}

TEST(FqCodelQuantum, OversizedPacketsStillServedFairly) {
  // Packets larger than the quantum (jumbo aggregates) must not starve the
  // other flows: DRR's deficit goes negative and the flow waits out its debt.
  sim::Scheduler sched;
  aqm::FqCodelConfig cfg;
  cfg.memory_limit_bytes = std::size_t{1} << 26;
  cfg.quantum = 1500;  // far below the 8900-byte packets
  aqm::FqCodelQueue q(sched, cfg);
  for (std::uint64_t i = 0; i < 30; ++i) {
    (void)q.enqueue(test::make_packet(1, i));
    (void)q.enqueue(test::make_packet(2, 100 + i));
  }
  int flow1 = 0;
  int flow2 = 0;
  for (int i = 0; i < 40; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    (p->flow == 1 ? flow1 : flow2)++;
  }
  EXPECT_NEAR(flow1, flow2, 2);
}

TEST(ExperimentId, EncodesRttAndLoss) {
  exp::ExperimentConfig a;
  exp::ExperimentConfig b = a;
  b.rtt = sim::Time::milliseconds(20);
  EXPECT_NE(a.id(), b.id());
  exp::ExperimentConfig c = a;
  c.random_loss = 0.01;
  EXPECT_NE(a.id(), c.id());
}

TEST(ExperimentId, EcnAndPacingFlagged) {
  exp::ExperimentConfig a;
  exp::ExperimentConfig b = a;
  b.ecn = true;
  EXPECT_NE(a.id(), b.id());
  exp::ExperimentConfig c = a;
  c.pace_all = true;
  EXPECT_NE(a.id(), c.id());
}

TEST(PaperFlows, SplitNeverZero) {
  for (const double bw : exp::paper_bandwidths()) {
    EXPECT_GE(exp::ExperimentConfig::paper_flows_for(bw), 2u);
  }
}

TEST(DurationScaling, MonotoneNonIncreasingWithBandwidth) {
  sim::Time prev = sim::Time::max();
  for (const double bw : exp::paper_bandwidths()) {
    const sim::Time d = exp::ExperimentConfig::default_duration_for(bw);
    EXPECT_LE(d, prev);
    prev = d;
  }
}

}  // namespace
}  // namespace elephant
