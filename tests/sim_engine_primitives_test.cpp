// Unit tests for the event-engine building blocks introduced with the
// allocation-free scheduler: InplaceCallback (SBO + pooled storage),
// RingDeque (grow-only ring with deque semantics), re-armable TimerHandles,
// and weak-event run() semantics.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/callback.hpp"
#include "sim/ring_deque.hpp"
#include "sim/scheduler.hpp"

namespace elephant::sim {
namespace {

// --- InplaceCallback -------------------------------------------------------

TEST(InplaceCallback, EmptyIsFalsey) {
  InplaceCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InplaceCallback, SmallCaptureStaysInline) {
  int hits = 0;
  InplaceCallback cb([&hits] { ++hits; });
  EXPECT_TRUE(cb.is_inline());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceCallback, LargeCaptureGoesOutOfLine) {
  std::array<std::uint64_t, 32> payload{};  // 256 B > inline and pooled-block fit
  payload[31] = 42;
  std::uint64_t seen = 0;
  InplaceCallback cb([payload, &seen] { seen = payload[31]; });
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(seen, 42u);
}

TEST(InplaceCallback, MovePreservesTarget) {
  auto state = std::make_shared<int>(0);
  InplaceCallback a([state] { ++*state; });
  InplaceCallback b(std::move(a));
  InplaceCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(*state, 1);
}

TEST(InplaceCallback, DestroysCaptureExactlyOnce) {
  auto state = std::make_shared<int>(7);
  EXPECT_EQ(state.use_count(), 1);
  {
    InplaceCallback a([state] {});
    EXPECT_EQ(state.use_count(), 2);
    InplaceCallback b(std::move(a));
    EXPECT_EQ(state.use_count(), 2);  // moved, not copied
  }
  EXPECT_EQ(state.use_count(), 1);
}

TEST(InplaceCallback, PooledBlocksAreRecycled) {
  struct Big {
    std::array<std::uint64_t, 12> payload{};  // 96 B: pooled, not inline
    void operator()() const {}
  };
  // Drain + refill the pool a few times; mostly exercises that recycled
  // blocks still invoke and destroy correctly (ASan would flag misuse).
  for (int round = 0; round < 4; ++round) {
    std::vector<InplaceCallback> cbs;
    for (int i = 0; i < 64; ++i) {
      cbs.emplace_back(Big{});
      EXPECT_FALSE(cbs.back().is_inline());
    }
    for (auto& cb : cbs) cb();
  }
}

// --- RingDeque -------------------------------------------------------------

TEST(RingDeque, PushPopFifoOrder) {
  RingDeque<int> d;
  for (int i = 0; i < 100; ++i) d.push_back(i);
  EXPECT_EQ(d.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.front(), i);
    d.pop_front();
  }
  EXPECT_TRUE(d.empty());
}

TEST(RingDeque, WrapsAroundWithoutGrowing) {
  RingDeque<int> d;
  d.reserve(16);
  const std::size_t cap = d.capacity();
  // Slide a window of 5 elements through many wraps.
  int next = 0, expect = 0;
  for (int i = 0; i < 5; ++i) d.push_back(next++);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(d.front(), expect++);
    d.pop_front();
    d.push_back(next++);
  }
  EXPECT_EQ(d.capacity(), cap) << "sliding window must not grow the ring";
  EXPECT_EQ(d.size(), 5u);
}

TEST(RingDeque, GrowPreservesOrderAcrossWrap) {
  RingDeque<std::string> d;
  // Force a wrapped layout, then grow: elements must come out in order.
  for (int i = 0; i < 12; ++i) d.push_back("x" + std::to_string(i));
  for (int i = 0; i < 8; ++i) d.pop_front();
  for (int i = 12; i < 40; ++i) d.push_back("x" + std::to_string(i));  // grows
  int expect = 8;
  while (!d.empty()) {
    EXPECT_EQ(d.front(), "x" + std::to_string(expect++));
    d.pop_front();
  }
  EXPECT_EQ(expect, 40);
}

TEST(RingDeque, RandomAccessAndBack) {
  RingDeque<int> d;
  for (int i = 0; i < 20; ++i) d.push_back(i);
  for (int i = 0; i < 7; ++i) d.pop_front();
  EXPECT_EQ(d[0], 7);
  EXPECT_EQ(d[12], 19);
  EXPECT_EQ(d.back(), 19);
  d.back() = 99;
  EXPECT_EQ(d[12], 99);
}

// --- TimerHandle -----------------------------------------------------------

TEST(TimerHandle, FiresAtRearmedDeadline) {
  Scheduler s;
  std::vector<Time> fires;
  TimerHandle t;
  t.init(s, [&] { fires.push_back(s.now()); });
  EXPECT_FALSE(t.armed());
  t.rearm(Time::milliseconds(5));
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(t.deadline(), Time::milliseconds(5));
  s.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], Time::milliseconds(5));
  EXPECT_FALSE(t.armed());
}

TEST(TimerHandle, RearmWhilePendingMovesTheDeadline) {
  Scheduler s;
  std::vector<Time> fires;
  TimerHandle t;
  t.init(s, [&] { fires.push_back(s.now()); });
  t.rearm(Time::milliseconds(50));
  t.rearm(Time::milliseconds(10));  // earlier
  s.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], Time::milliseconds(10));
}

TEST(TimerHandle, RearmFromOwnCallbackIsPeriodic) {
  Scheduler s;
  int fires = 0;
  TimerHandle t;
  t.init(s, [&] {
    if (++fires < 5) t.rearm(s.now() + Time::milliseconds(10));
  });
  t.rearm(Time::milliseconds(10));
  s.run();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(s.now(), Time::milliseconds(50));
}

TEST(TimerHandle, DisarmPreventsFire) {
  Scheduler s;
  int fires = 0;
  TimerHandle t;
  t.init(s, [&] { ++fires; });
  t.rearm(Time::milliseconds(5));
  t.disarm();
  EXPECT_FALSE(t.armed());
  s.run();
  EXPECT_EQ(fires, 0);
  // The slot survives disarm: the timer can be armed again.
  t.rearm(s.now() + Time::milliseconds(5));
  s.run();
  EXPECT_EQ(fires, 1);
}

TEST(TimerHandle, DestructionWhileArmedIsClean) {
  Scheduler s;
  int fires = 0;
  {
    TimerHandle t;
    t.init(s, [&] { ++fires; });
    t.rearm(Time::milliseconds(5));
  }  // destroyed while armed
  s.run();
  EXPECT_EQ(fires, 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(TimerHandle, SameInstantFifoAgainstOneShots) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::milliseconds(1), [&] { order.push_back(0); });
  TimerHandle t;
  t.init(s, [&] { order.push_back(1); });
  t.rearm(Time::milliseconds(1));
  s.schedule_at(Time::milliseconds(1), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TimerHandle, RearmRedrawsFifoRank) {
  Scheduler s;
  std::vector<int> order;
  TimerHandle t;
  t.init(s, [&] { order.push_back(0); });
  t.rearm(Time::milliseconds(1));
  s.schedule_at(Time::milliseconds(1), [&] { order.push_back(1); });
  // Re-arming to the same instant AFTER the one-shot was scheduled must
  // place the timer behind it, exactly as cancel + re-schedule would have.
  t.rearm(Time::milliseconds(1));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

// --- weak events -----------------------------------------------------------

TEST(WeakEvents, RunIgnoresLoneWeakTimer) {
  Scheduler s;
  int samples = 0;
  TimerHandle sampler;
  sampler.init(s, [&] {
    ++samples;
    sampler.rearm(s.now() + Time::milliseconds(10));
  }, /*weak=*/true);
  sampler.rearm(Time::milliseconds(10));
  s.run();  // must return immediately: only weak work pending
  EXPECT_EQ(samples, 0);
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_EQ(s.strong_pending_events(), 0u);
}

TEST(WeakEvents, WeakTimerFiresWhileStrongWorkRemains) {
  Scheduler s;
  std::vector<Time> samples;
  TimerHandle sampler;
  sampler.init(s, [&] {
    samples.push_back(s.now());
    sampler.rearm(s.now() + Time::milliseconds(10));
  }, /*weak=*/true);
  sampler.rearm(Time::milliseconds(10));
  s.schedule_at(Time::milliseconds(35), [] {});  // strong anchor
  s.run();
  // Weak fires at 10, 20, 30 ride along; the run stops once the strong
  // event at 35 has executed (the 40 ms weak fire never happens).
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[2], Time::milliseconds(30));
  EXPECT_EQ(s.now(), Time::milliseconds(35));
}

TEST(WeakEvents, RunUntilStillFiresWeakEvents) {
  Scheduler s;
  int samples = 0;
  TimerHandle sampler;
  sampler.init(s, [&] {
    ++samples;
    sampler.rearm(s.now() + Time::milliseconds(10));
  }, /*weak=*/true);
  sampler.rearm(Time::milliseconds(10));
  s.run_until(Time::milliseconds(45));  // deadline bounds the run already
  EXPECT_EQ(samples, 4);
  EXPECT_EQ(s.now(), Time::milliseconds(45));
}

TEST(WeakEvents, BudgetRunReportsExhaustedWithOnlyWeakLeft) {
  Scheduler s;
  TimerHandle sampler;
  sampler.init(s, [&] { sampler.rearm(s.now() + Time::milliseconds(10)); },
               /*weak=*/true);
  sampler.rearm(Time::milliseconds(10));
  s.schedule_at(Time::milliseconds(5), [] {});
  const auto stop = s.run_until(Time::seconds(1), Scheduler::RunLimits{});
  // The sampler kept firing to the deadline, but with no strong work left
  // the run reports exhaustion — experiment loops use this to terminate.
  EXPECT_EQ(stop, Scheduler::StopReason::kQueueExhausted);
}

// --- slot recycling under churn -------------------------------------------

TEST(SchedulerSlots, IdsStayDeadAcrossHeavyRecycling) {
  Scheduler s;
  const EventId first = s.schedule_at(Time::milliseconds(1), [] {});
  s.cancel(first);
  // Recycle the free slot many times; the original id must stay dead even
  // though its slot index is reused (generation tag, not watermark).
  for (int i = 0; i < 100; ++i) {
    const EventId id = s.schedule_at(Time::milliseconds(1), [] {});
    EXPECT_TRUE(s.pending(id));
    s.cancel(id);
    EXPECT_FALSE(s.pending(first));
  }
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
}

}  // namespace
}  // namespace elephant::sim
