#include "exp/report.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "exp/manifest.hpp"
#include "exp/status.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace elephant::exp {
namespace {

namespace fs = std::filesystem;

ManifestEntry claim(const std::string& id, const std::string& worker) {
  ManifestEntry e;
  e.id = id;
  e.status = RunStatus::kClaimed;
  e.worker = worker;
  e.lease_until_unix_s = 1e12;
  return e;
}

ManifestEntry done(const std::string& id, double wall_s, RunStatus status = RunStatus::kOk) {
  ManifestEntry e;
  e.id = id;
  e.status = status;
  e.repetitions = 1;
  e.jain2 = 0.9;
  e.utilization = 0.8;
  e.wall_s = wall_s;
  if (!succeeded(status)) e.error = "boom";
  return e;
}

std::string journal_line(const obs::MetricsRegistry& reg, const std::string& worker,
                         double elapsed_s) {
  std::string line = "{\"elapsed_s\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", elapsed_s);
  line += buf;
  line += ",\"final\":true,\"worker\":\"" + worker + "\",";
  std::string reg_json;
  obs::append_json(reg, &reg_json);
  line.append(reg_json, 1, reg_json.size() - 2);
  line += "}";
  return line;
}

/// A synthetic two-worker sweep directory: manifest with claims, completions,
/// a lease steal, and a failure; one metrics journal per worker.
class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("elephant_report_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    manifest_ = dir_ / "manifest.jsonl";

    std::ofstream out(manifest_);
    // Cell A: claimed and completed by w1 (2 s, a mild 2-episode cell).
    out << SweepManifest::format_line(claim("cellA", "w1")) << "\n";
    ManifestEntry a = done("cellA", 2.0);
    a.episodes = 2;
    a.episode_worst_jain = 0.7;
    a.episode_victim = 1;
    a.episode_cause = "fault";
    out << SweepManifest::format_line(a) << "\n";
    // Cell B: claimed and completed by w2 (4 s, the worst episode cell).
    out << SweepManifest::format_line(claim("cellB", "w2")) << "\n";
    ManifestEntry b = done("cellB", 4.0);
    b.episodes = 1;
    b.episode_worst_jain = 0.4;
    b.episode_victim = 2;
    b.episode_cause = "loss-burst";
    out << SweepManifest::format_line(b) << "\n";
    // Cell C: claimed by w1, stolen and completed by w2 (1 s).
    out << SweepManifest::format_line(claim("cellC", "w1")) << "\n";
    out << SweepManifest::format_line(claim("cellC", "w2")) << "\n";
    out << SweepManifest::format_line(done("cellC", 1.0)) << "\n";
    // Cell D: failed without any claim line (single-process path).
    out << SweepManifest::format_line(done("cellD", 0.5, RunStatus::kFailed)) << "\n";
    out << "{\"torn";  // crashed writer's tail must be skipped
    out.close();

    obs::MetricsRegistry r1;
    r1.counter("sweep.cache_hits").add(2);
    r1.counter("sweep.cache_misses").add(1);
    r1.histogram("sweep.cell_wall_s").record(2.0);
    r1.histogram("prof.cell_run_s").record(1.5);
    std::ofstream(dir_ / "metrics-w1.jsonl") << journal_line(r1, "w1", 10.0) << "\n";

    obs::MetricsRegistry r2;
    r2.counter("sweep.cache_hits").add(1);
    r2.counter("sweep.cache_misses").add(2);
    r2.histogram("sweep.cell_wall_s").record(4.0);
    r2.histogram("sweep.cell_wall_s").record(1.0);
    std::ofstream(dir_ / "metrics-w2.jsonl") << journal_line(r2, "w2", 10.0) << "\n";
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  const ReportWorker* worker(const SweepSummary& s, const std::string& id) {
    for (const ReportWorker& w : s.workers) {
      if (w.id == id) return &w;
    }
    return nullptr;
  }

  fs::path dir_;
  fs::path manifest_;
};

TEST_F(ReportTest, MergesManifestHistoryAndJournals) {
  ReportOptions opt;
  opt.manifest_path = manifest_;  // metrics_paths empty → auto-discover
  SweepSummary s;
  std::string error;
  ASSERT_TRUE(build_report(opt, &s, &error)) << error;

  EXPECT_EQ(s.cells_total, 4u);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.claims, 4u);
  EXPECT_EQ(s.steals, 1u);
  EXPECT_DOUBLE_EQ(s.wall_s_total, 7.0);

  // Per-worker cell counts must sum to the manifest's completed-cell count.
  std::size_t attributed = 0;
  for (const ReportWorker& w : s.workers) attributed += w.cells;
  EXPECT_EQ(attributed, s.completed);

  const ReportWorker* w1 = worker(s, "w1");
  const ReportWorker* w2 = worker(s, "w2");
  ASSERT_NE(w1, nullptr);
  ASSERT_NE(w2, nullptr);
  EXPECT_EQ(w1->cells, 1u);
  EXPECT_EQ(w1->claims, 2u);
  EXPECT_EQ(w1->steals, 0u);
  EXPECT_DOUBLE_EQ(w1->wall_s, 2.0);
  EXPECT_DOUBLE_EQ(w1->elapsed_s, 10.0);
  EXPECT_NEAR(w1->utilization, 0.2, 1e-12);
  EXPECT_EQ(w2->cells, 2u);  // cellB plus the stolen cellC
  EXPECT_EQ(w2->steals, 1u);
  EXPECT_DOUBLE_EQ(w2->wall_s, 5.0);

  EXPECT_EQ(s.cache_hits, 3u);
  EXPECT_EQ(s.cache_misses, 3u);
  EXPECT_DOUBLE_EQ(s.cache_hit_rate, 0.5);

  // The per-worker wall-time histograms folded across both journals.
  bool saw_cell_wall = false;
  for (const ReportPhase& p : s.phases) {
    if (p.name == "sweep.cell_wall_s") {
      saw_cell_wall = true;
      EXPECT_EQ(p.count, 3u);
      EXPECT_DOUBLE_EQ(p.total_s, 7.0);
    }
  }
  EXPECT_TRUE(saw_cell_wall);

  // Rankings: slowest by wall time desc; episodes by worst Jain asc.
  ASSERT_GE(s.slowest.size(), 2u);
  EXPECT_EQ(s.slowest[0].id, "cellB");
  EXPECT_EQ(s.slowest[0].worker, "w2");
  ASSERT_EQ(s.episode_cells.size(), 2u);
  EXPECT_EQ(s.episode_cells[0].id, "cellB");
  EXPECT_EQ(s.episode_cells[0].cause, "loss-burst");
  EXPECT_EQ(s.episode_cells[0].victim, 2u);
  EXPECT_EQ(s.episode_cells[1].id, "cellA");
}

TEST_F(ReportTest, RendersSchemaTaggedJsonAndMarkdown) {
  ReportOptions opt;
  opt.manifest_path = manifest_;
  SweepSummary s;
  std::string error;
  ASSERT_TRUE(build_report(opt, &s, &error)) << error;

  const std::string json = render_report_json(s);
  EXPECT_EQ(json.find("{\"schema\":\"elephant-report-v1\""), 0u);
  EXPECT_NE(json.find("\"completed\":3"), std::string::npos);
  EXPECT_NE(json.find("\"steals\":1"), std::string::npos);
  EXPECT_NE(json.find("\"episode_cells\":[{\"id\":\"cellB\""), std::string::npos);

  const std::string md = render_report_markdown(s);
  EXPECT_NE(md.find("## Workers"), std::string::npos);
  EXPECT_NE(md.find("| w2 | 2 |"), std::string::npos);
  EXPECT_NE(md.find("loss-burst"), std::string::npos);
}

TEST_F(ReportTest, TopNTruncatesRankings) {
  ReportOptions opt;
  opt.manifest_path = manifest_;
  opt.top_n = 1;
  SweepSummary s;
  std::string error;
  ASSERT_TRUE(build_report(opt, &s, &error)) << error;
  EXPECT_EQ(s.slowest.size(), 1u);
  EXPECT_EQ(s.episode_cells.size(), 1u);
  EXPECT_EQ(s.slowest[0].id, "cellB");
}

TEST_F(ReportTest, ExplicitJournalListSkipsDiscovery) {
  ReportOptions opt;
  opt.manifest_path = manifest_;
  opt.metrics_paths = {dir_ / "metrics-w1.jsonl"};
  SweepSummary s;
  std::string error;
  ASSERT_TRUE(build_report(opt, &s, &error)) << error;
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.cache_misses, 1u);
  const ReportWorker* w2 = worker(s, "w2");
  ASSERT_NE(w2, nullptr);
  EXPECT_DOUBLE_EQ(w2->elapsed_s, 0.0);  // no journal read for w2
}

TEST(ReportErrorTest, MissingOrEmptyManifestFails) {
  ReportOptions opt;
  opt.manifest_path = "/nonexistent/manifest.jsonl";
  SweepSummary s;
  std::string error;
  EXPECT_FALSE(build_report(opt, &s, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  const auto empty = fs::temp_directory_path() /
                     ("elephant_report_empty_" + std::to_string(::getpid()) + ".jsonl");
  { std::ofstream out(empty); }
  opt.manifest_path = empty;
  error.clear();
  EXPECT_FALSE(build_report(opt, &s, &error));
  EXPECT_NE(error.find("no parseable"), std::string::npos);
  fs::remove(empty);
}

}  // namespace
}  // namespace elephant::exp
