#include "metrics/queue_monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "net/topology.hpp"
#include "tcp/flow.hpp"

namespace elephant::metrics {
namespace {

struct Fixture {
  sim::Scheduler sched;
  net::Dumbbell net;
  Fixture() : net(sched, topo()) {}
  static net::DumbbellConfig topo() {
    net::DumbbellConfig cfg;
    cfg.bottleneck_bps = 100e6;
    cfg.bottleneck_buffer_bytes = static_cast<std::size_t>(2 * 100e6 * 0.062 / 8);
    return cfg;
  }
};

TEST(QueueMonitor, SamplesBottleneckBacklog) {
  Fixture f;
  tcp::FlowConfig fc;
  fc.id = 1;
  fc.cca = cca::CcaKind::kCubic;
  tcp::Flow flow(f.sched, f.net.client(0), f.net.server(0), fc);
  QueueMonitor mon(f.sched, f.net.bottleneck(), sim::Time::seconds(1));
  flow.start();
  mon.start();
  f.sched.run_until(sim::Time::seconds(15.5));
  ASSERT_EQ(mon.samples().size(), 15u);
  // CUBIC fills the FIFO: backlog must be visible at some point.
  EXPECT_GT(mon.max_backlog_bytes(), 0u);
}

TEST(QueueMonitor, UtilizationPerIntervalBounded) {
  Fixture f;
  tcp::FlowConfig fc;
  fc.id = 1;
  fc.cca = cca::CcaKind::kCubic;
  tcp::Flow flow(f.sched, f.net.client(0), f.net.server(0), fc);
  QueueMonitor mon(f.sched, f.net.bottleneck(), sim::Time::seconds(1));
  flow.start();
  mon.start();
  f.sched.run_until(sim::Time::seconds(20.5));
  for (const auto& s : mon.samples()) {
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.01);
  }
  EXPECT_GT(mon.mean_utilization(), 0.5);
}

TEST(QueueMonitor, CountersAreCumulative) {
  Fixture f;
  tcp::FlowConfig fc;
  fc.id = 1;
  fc.cca = cca::CcaKind::kCubic;
  tcp::Flow flow(f.sched, f.net.client(0), f.net.server(0), fc);
  QueueMonitor mon(f.sched, f.net.bottleneck(), sim::Time::seconds(1));
  flow.start();
  mon.start();
  f.sched.run_until(sim::Time::seconds(30.5));
  const auto& ss = mon.samples();
  for (std::size_t i = 1; i < ss.size(); ++i) {
    EXPECT_GE(ss[i].dropped_overflow, ss[i - 1].dropped_overflow);
    EXPECT_GE(ss[i].tx_bytes, ss[i - 1].tx_bytes);
  }
}

TEST(QueueMonitor, CsvRoundTrip) {
  Fixture f;
  QueueMonitor mon(f.sched, f.net.bottleneck(), sim::Time::seconds(1));
  mon.start();
  f.sched.run_until(sim::Time::seconds(3.5));
  std::ostringstream out;
  mon.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("t_s,backlog_bytes"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3
}

TEST(QueueMonitor, EmptyMonitorSafeAccessors) {
  Fixture f;
  QueueMonitor mon(f.sched, f.net.bottleneck(), sim::Time::seconds(1));
  EXPECT_EQ(mon.max_backlog_bytes(), 0u);
  EXPECT_DOUBLE_EQ(mon.mean_utilization(), 0.0);
}

}  // namespace
}  // namespace elephant::metrics
