#include "cca/htcp.hpp"

#include <gtest/gtest.h>

namespace elephant::cca {
namespace {

AckSample ack(double acked, double now_s, double rtt_ms = 62) {
  AckSample a;
  a.now = sim::Time::seconds(now_s);
  a.rtt = sim::Time::milliseconds(static_cast<std::int64_t>(rtt_ms));
  a.acked_segments = acked;
  return a;
}

LossSample loss(double now_s) {
  LossSample l;
  l.now = sim::Time::seconds(now_s);
  l.lost_segments = 1;
  l.new_congestion_event = true;
  return l;
}

TEST(Htcp, SlowStartUntilFirstLoss) {
  Htcp h{CcaParams{}};
  EXPECT_TRUE(h.in_slow_start());
  h.on_ack(ack(10, 0.1));
  EXPECT_DOUBLE_EQ(h.cwnd_segments(), 20.0);
}

TEST(Htcp, RenoLikeWithinDeltaL) {
  Htcp h{CcaParams{}};
  h.on_ack(ack(90, 0.1));  // cwnd 100
  h.on_loss(loss(1.0));
  // Within 1 s of the loss α stays 1: one full window of acks adds ~1.
  const double w0 = h.cwnd_segments();
  double acked = 0;
  while (acked < w0) {
    h.on_ack(ack(1, 1.5));
    acked += 1;
  }
  EXPECT_NEAR(h.cwnd_segments(), w0 + 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(h.alpha(), 1.0);
}

TEST(Htcp, AlphaGrowsQuadraticallyAfterDeltaL) {
  Htcp h{CcaParams{}};
  h.on_ack(ack(90, 0.1));
  h.on_loss(loss(0.5));
  // 3.5 s after the loss: Δ-Δ_L = 2.5 → raw α = 1+25+1.5625 = 27.5625,
  // scaled by 2(1-β).
  h.on_ack(ack(1, 4.0));
  const double expected_raw = 1.0 + 10.0 * 2.5 + (2.5 / 2) * (2.5 / 2);
  EXPECT_NEAR(h.alpha(), 2.0 * (1.0 - h.beta()) * expected_raw, 1e-6);
}

TEST(Htcp, AlphaResetsOnLoss) {
  Htcp h{CcaParams{}};
  h.on_ack(ack(90, 0.1));
  h.on_loss(loss(0.5));
  h.on_ack(ack(1, 5.0));
  EXPECT_GT(h.alpha(), 10.0);
  h.on_loss(loss(5.1));
  EXPECT_DOUBLE_EQ(h.alpha(), 1.0);
}

TEST(Htcp, AdaptiveBetaTracksRttRatio) {
  Htcp h{CcaParams{}};
  h.on_ack(ack(90, 0.1));
  h.on_loss(loss(0.2));  // establish an epoch
  // Epoch with RTT from 62 to 124 ms: β ≈ 62/124 = 0.5.
  h.on_ack(ack(1, 0.5, 62));
  h.on_ack(ack(1, 0.9, 124));
  h.on_loss(loss(1.0));
  EXPECT_NEAR(h.beta(), 0.5, 0.01);
}

TEST(Htcp, BetaClampedToBounds) {
  HtcpParams p;
  Htcp h{CcaParams{}, p};
  h.on_ack(ack(90, 0.1));
  h.on_loss(loss(0.2));
  // Nearly constant RTT: ratio ~1 but clamped to beta_max=0.8.
  h.on_ack(ack(1, 0.5, 62));
  h.on_ack(ack(1, 0.9, 62));
  h.on_loss(loss(1.0));
  EXPECT_NEAR(h.beta(), 0.8, 1e-9);
}

TEST(Htcp, BackoffUsesBeta) {
  Htcp h{CcaParams{}};
  h.on_ack(ack(90, 0.1));
  h.on_loss(loss(0.2));
  h.on_ack(ack(1, 0.5, 62));
  h.on_ack(ack(1, 0.9, 62));
  const double w = h.cwnd_segments();
  h.on_loss(loss(1.0));  // β = 0.8
  EXPECT_NEAR(h.cwnd_segments(), w * 0.8, 1e-6);
}

TEST(Htcp, BufferbloatLowersBetaAndThroughput) {
  // The mechanism behind paper Fig. 2(k)-(o): queue-induced RTT inflation
  // drives β toward 0.5, making HTCP back off harder.
  Htcp bloated{CcaParams{}};
  bloated.on_ack(ack(90, 0.1));
  bloated.on_loss(loss(0.2));
  bloated.on_ack(ack(1, 0.5, 62));
  bloated.on_ack(ack(1, 0.9, 500));  // severe bufferbloat
  bloated.on_loss(loss(1.0));
  EXPECT_NEAR(bloated.beta(), 0.5, 1e-9);
}

TEST(Htcp, RtoCollapses) {
  Htcp h{CcaParams{}};
  h.on_ack(ack(90, 0.1));
  h.on_rto(sim::Time::seconds(1));
  EXPECT_DOUBLE_EQ(h.cwnd_segments(), 2.0);
  EXPECT_DOUBLE_EQ(h.alpha(), 1.0);
}

}  // namespace
}  // namespace elephant::cca
