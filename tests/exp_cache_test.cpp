#include "exp/cache.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace elephant::exp {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("elephant_cache_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

ExperimentResult fake_result(const ExperimentConfig& cfg) {
  ExperimentResult r;
  r.config = cfg;
  r.sender_bps[0] = 4.2e8;
  r.sender_bps[1] = 5.8e8;
  r.jain2 = 0.973;
  r.utilization = 0.99;
  r.retx_segments = 1234;
  r.rtos = 3;
  r.events_executed = 1000000;
  r.wall_seconds = 1.5;
  return r;
}

TEST_F(CacheTest, MissOnEmptyCache) {
  ResultCache cache(dir_);
  EXPECT_FALSE(cache.load(ExperimentConfig{}).has_value());
}

TEST_F(CacheTest, StoreThenLoadRoundTrips) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  const auto loaded = cache.load(cfg);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->sender_bps[0], 4.2e8);
  EXPECT_DOUBLE_EQ(loaded->sender_bps[1], 5.8e8);
  EXPECT_DOUBLE_EQ(loaded->jain2, 0.973);
  EXPECT_DOUBLE_EQ(loaded->utilization, 0.99);
  EXPECT_EQ(loaded->retx_segments, 1234u);
  EXPECT_EQ(loaded->rtos, 3u);
}

TEST_F(CacheTest, DifferentConfigsDoNotCollide) {
  ResultCache cache(dir_);
  ExperimentConfig a;
  ExperimentConfig b;
  b.buffer_bdp = 16;
  cache.store(fake_result(a));
  EXPECT_TRUE(cache.load(a).has_value());
  EXPECT_FALSE(cache.load(b).has_value());
}

TEST_F(CacheTest, DisabledCacheStoresNothing) {
  ResultCache cache(dir_);
  cache.set_enabled(false);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  EXPECT_FALSE(cache.load(cfg).has_value());
  cache.set_enabled(true);
  EXPECT_FALSE(cache.load(cfg).has_value());
}

TEST_F(CacheTest, CorruptFileIsAMiss) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  // Truncate the file behind the cache's back.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::ofstream(entry.path(), std::ios::trunc) << "garbage\n";
  }
  EXPECT_FALSE(cache.load(cfg).has_value());
}

TEST_F(CacheTest, SeedIsPartOfTheKey) {
  ResultCache cache(dir_);
  ExperimentConfig a;
  a.seed = 1;
  ExperimentConfig b;
  b.seed = 2;
  cache.store(fake_result(a));
  EXPECT_TRUE(cache.load(a).has_value());
  EXPECT_FALSE(cache.load(b).has_value());
}

}  // namespace
}  // namespace elephant::exp
