#include "exp/cache.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "workload/workload.hpp"

namespace elephant::exp {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("elephant_cache_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

ExperimentResult fake_result(const ExperimentConfig& cfg) {
  ExperimentResult r;
  r.config = cfg;
  r.sender_bps[0] = 4.2e8;
  r.sender_bps[1] = 5.8e8;
  r.jain2 = 0.973;
  r.utilization = 0.99;
  r.retx_segments = 1234;
  r.rtos = 3;
  r.events_executed = 1000000;
  r.wall_seconds = 1.5;
  return r;
}

TEST_F(CacheTest, MissOnEmptyCache) {
  ResultCache cache(dir_);
  EXPECT_FALSE(cache.load(ExperimentConfig{}).has_value());
}

TEST_F(CacheTest, StoreThenLoadRoundTrips) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  const auto loaded = cache.load(cfg);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->sender_bps[0], 4.2e8);
  EXPECT_DOUBLE_EQ(loaded->sender_bps[1], 5.8e8);
  EXPECT_DOUBLE_EQ(loaded->jain2, 0.973);
  EXPECT_DOUBLE_EQ(loaded->utilization, 0.99);
  EXPECT_EQ(loaded->retx_segments, 1234u);
  EXPECT_EQ(loaded->rtos, 3u);
}

TEST_F(CacheTest, DifferentConfigsDoNotCollide) {
  ResultCache cache(dir_);
  ExperimentConfig a;
  ExperimentConfig b;
  b.buffer_bdp = 16;
  cache.store(fake_result(a));
  EXPECT_TRUE(cache.load(a).has_value());
  EXPECT_FALSE(cache.load(b).has_value());
}

TEST_F(CacheTest, DisabledCacheStoresNothing) {
  ResultCache cache(dir_);
  cache.set_enabled(false);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  EXPECT_FALSE(cache.load(cfg).has_value());
  cache.set_enabled(true);
  EXPECT_FALSE(cache.load(cfg).has_value());
}

TEST_F(CacheTest, CorruptFileIsAMiss) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  // Truncate the file behind the cache's back.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::ofstream(entry.path(), std::ios::trunc) << "garbage\n";
  }
  EXPECT_FALSE(cache.load(cfg).has_value());
}

std::filesystem::path only_file(const std::filesystem::path& dir) {
  std::filesystem::path file;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) file = entry.path();
  return file;
}

TEST_F(CacheTest, MangledNumericFieldRejectedAndDeleted) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  const auto file = only_file(dir_);
  // A bit flip turning a digit into junk used to atof() to 0.0 and be served
  // as a "valid" result.
  std::ofstream(file, std::ios::trunc) << "sender1_bps=4.2e8\nsender2_bps=4x8\n"
                                          "jain2=0.9\nutilization=0.9\nretx_segments=1\n";
  EXPECT_FALSE(cache.load(cfg).has_value());
  EXPECT_FALSE(std::filesystem::exists(file)) << "corrupt entry must be evicted";
}

TEST_F(CacheTest, NonFiniteValuesRejectedAndDeleted) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  const auto file = only_file(dir_);
  std::ofstream(file, std::ios::trunc) << "sender1_bps=nan\nsender2_bps=inf\n"
                                          "jain2=0.9\nutilization=0.9\nretx_segments=1\n";
  EXPECT_FALSE(cache.load(cfg).has_value());
  EXPECT_FALSE(std::filesystem::exists(file));
}

TEST_F(CacheTest, TruncatedEntryRejectedAndDeleted) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  const auto file = only_file(dir_);
  // Simulate a crash mid-write (pre-atomic-rename format): required fields
  // missing entirely.
  std::ofstream(file, std::ios::trunc) << "sender1_bps=4.2e8\nsender2_bps=5.8e8\n";
  EXPECT_FALSE(cache.load(cfg).has_value());
  EXPECT_FALSE(std::filesystem::exists(file));
}

TEST_F(CacheTest, EvictionThenStoreRegenerates) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  std::ofstream(only_file(dir_), std::ios::trunc) << "garbage\n";
  EXPECT_FALSE(cache.load(cfg).has_value());
  cache.store(fake_result(cfg));
  const auto loaded = cache.load(cfg);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->jain2, 0.973);
}

TEST_F(CacheTest, SeedIsPartOfTheKey) {
  ResultCache cache(dir_);
  ExperimentConfig a;
  a.seed = 1;
  ExperimentConfig b;
  b.seed = 2;
  cache.store(fake_result(a));
  EXPECT_TRUE(cache.load(a).has_value());
  EXPECT_FALSE(cache.load(b).has_value());
}

ExperimentResult fake_workload_result(const ExperimentConfig& cfg) {
  ExperimentResult r = fake_result(cfg);
  ClassResult elephants;
  elephants.name = "elephants";
  elephants.flows = 2;
  elephants.throughput_bps = 9e7;
  elephants.share = 0.9;
  elephants.jain = 0.98;
  ClassResult mice;
  mice.name = "mice";
  mice.flows = 40;
  mice.completed = 38;
  mice.throughput_bps = 1e7;
  mice.share = 0.1;
  mice.jain = 0.6;
  mice.fct_p50_s = 0.12;
  mice.fct_p95_s = 0.9;
  mice.fct_p99_s = 1.7;
  mice.fct_mean_s = 0.3;
  mice.slowdown_p50 = 2.5;
  mice.slowdown_p95 = 11.0;
  mice.slowdown_p99 = 19.0;
  r.classes = {elephants, mice};
  return r;
}

TEST_F(CacheTest, WorkloadIsPartOfTheKey) {
  ResultCache cache(dir_);
  ExperimentConfig paper;                                         // default workload
  ExperimentConfig mice = paper;
  mice.workload = workload::WorkloadSpec::mice_elephants();
  ExperimentConfig web = paper;
  web.workload = workload::WorkloadSpec::poisson_web();

  cache.store(fake_result(paper));
  EXPECT_TRUE(cache.load(paper).has_value());
  EXPECT_FALSE(cache.load(mice).has_value());
  EXPECT_FALSE(cache.load(web).has_value());

  cache.store(fake_workload_result(mice));
  EXPECT_TRUE(cache.load(mice).has_value());
  EXPECT_FALSE(cache.load(web).has_value());
  // The elephant-only entry must be untouched by the workload store.
  EXPECT_TRUE(cache.load(paper).has_value());

  // Same preset but one knob turned → different key.
  ExperimentConfig more_mice = mice;
  more_mice.workload.classes[1].count += 1;
  EXPECT_FALSE(cache.load(more_mice).has_value());
}

TEST_F(CacheTest, ClassRowsRoundTrip) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cfg.workload = workload::WorkloadSpec::mice_elephants();
  cache.store(fake_workload_result(cfg));
  const auto loaded = cache.load(cfg);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->classes.size(), 2u);
  EXPECT_EQ(loaded->classes[0].name, "elephants");
  EXPECT_DOUBLE_EQ(loaded->classes[0].jain, 0.98);
  EXPECT_EQ(loaded->classes[1].name, "mice");
  EXPECT_EQ(loaded->classes[1].flows, 40u);
  EXPECT_EQ(loaded->classes[1].completed, 38u);
  EXPECT_DOUBLE_EQ(loaded->classes[1].fct_p50_s, 0.12);
  EXPECT_DOUBLE_EQ(loaded->classes[1].fct_p99_s, 1.7);
  EXPECT_DOUBLE_EQ(loaded->classes[1].slowdown_p95, 11.0);
}

TEST_F(CacheTest, WorkloadEntryWithoutClassRowsIsEvicted) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cfg.workload = workload::WorkloadSpec::mice_elephants();
  cache.store(fake_workload_result(cfg));
  const auto file = only_file(dir_);
  // An entry written before the workload feature existed: all the scalar
  // fields are present but the classN rows are not. Serving it would hand a
  // mixed-traffic caller an elephant-shaped result.
  std::ofstream(file, std::ios::trunc)
      << "sender1_bps=4.2e8\nsender2_bps=5.8e8\njain2=0.9\nutilization=0.9\n"
         "retx_segments=1\nrtos=0\nn_flows=2\n";
  EXPECT_FALSE(cache.load(cfg).has_value());
  EXPECT_FALSE(std::filesystem::exists(file)) << "stale pre-workload entry must be evicted";
}

TEST_F(CacheTest, StoreLeavesNoTmpFilesAndWritesChecksum) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  int results = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".result")
        << "stray file after store: " << entry.path();
    ++results;
  }
  EXPECT_EQ(results, 1);
  std::ifstream in(only_file(dir_));
  std::string line;
  std::string last;
  while (std::getline(in, line)) last = line;
  EXPECT_EQ(last.rfind("sum=", 0), 0u) << "entry must end with its checksum";
  EXPECT_EQ(cache.store_failures(), 0u);
}

TEST_F(CacheTest, ChecksumMismatchQuarantinesEntry) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  const auto file = only_file(dir_);
  // Flip one digit of a value. Every field still parses — only the checksum
  // can catch this kind of silent corruption.
  std::string content;
  {
    std::ifstream in(file, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  const auto pos = content.find("jain2=");
  ASSERT_NE(pos, std::string::npos);
  content[pos + 6] = content[pos + 6] == '9' ? '8' : '9';  // flip leading digit
  std::ofstream(file, std::ios::trunc | std::ios::binary) << content;

  EXPECT_FALSE(cache.load(cfg).has_value());
  EXPECT_FALSE(std::filesystem::exists(file));
  EXPECT_TRUE(std::filesystem::exists(file.string() + ".corrupt"))
      << "corrupt entry must be preserved for post-mortem";
  EXPECT_EQ(cache.quarantined(), 1u);

  // Quarantine does not wedge the cell: a fresh store serves again.
  cache.store(fake_result(cfg));
  EXPECT_TRUE(cache.load(cfg).has_value());
}

TEST_F(CacheTest, LegacyEntryWithoutChecksumStillLoads) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  // Strip the sum line, emulating an entry written before checksums existed.
  const auto file = only_file(dir_);
  std::string content;
  {
    std::ifstream in(file, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  const auto pos = content.rfind("sum=");
  ASSERT_NE(pos, std::string::npos);
  content.erase(pos);
  std::ofstream(file, std::ios::trunc | std::ios::binary) << content;

  const auto loaded = cache.load(cfg);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->jain2, 0.973);
  EXPECT_EQ(cache.quarantined(), 0u);
}

}  // namespace
}  // namespace elephant::exp
