#include "exp/cache.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace elephant::exp {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("elephant_cache_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

ExperimentResult fake_result(const ExperimentConfig& cfg) {
  ExperimentResult r;
  r.config = cfg;
  r.sender_bps[0] = 4.2e8;
  r.sender_bps[1] = 5.8e8;
  r.jain2 = 0.973;
  r.utilization = 0.99;
  r.retx_segments = 1234;
  r.rtos = 3;
  r.events_executed = 1000000;
  r.wall_seconds = 1.5;
  return r;
}

TEST_F(CacheTest, MissOnEmptyCache) {
  ResultCache cache(dir_);
  EXPECT_FALSE(cache.load(ExperimentConfig{}).has_value());
}

TEST_F(CacheTest, StoreThenLoadRoundTrips) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  const auto loaded = cache.load(cfg);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->sender_bps[0], 4.2e8);
  EXPECT_DOUBLE_EQ(loaded->sender_bps[1], 5.8e8);
  EXPECT_DOUBLE_EQ(loaded->jain2, 0.973);
  EXPECT_DOUBLE_EQ(loaded->utilization, 0.99);
  EXPECT_EQ(loaded->retx_segments, 1234u);
  EXPECT_EQ(loaded->rtos, 3u);
}

TEST_F(CacheTest, DifferentConfigsDoNotCollide) {
  ResultCache cache(dir_);
  ExperimentConfig a;
  ExperimentConfig b;
  b.buffer_bdp = 16;
  cache.store(fake_result(a));
  EXPECT_TRUE(cache.load(a).has_value());
  EXPECT_FALSE(cache.load(b).has_value());
}

TEST_F(CacheTest, DisabledCacheStoresNothing) {
  ResultCache cache(dir_);
  cache.set_enabled(false);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  EXPECT_FALSE(cache.load(cfg).has_value());
  cache.set_enabled(true);
  EXPECT_FALSE(cache.load(cfg).has_value());
}

TEST_F(CacheTest, CorruptFileIsAMiss) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  // Truncate the file behind the cache's back.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::ofstream(entry.path(), std::ios::trunc) << "garbage\n";
  }
  EXPECT_FALSE(cache.load(cfg).has_value());
}

std::filesystem::path only_file(const std::filesystem::path& dir) {
  std::filesystem::path file;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) file = entry.path();
  return file;
}

TEST_F(CacheTest, MangledNumericFieldRejectedAndDeleted) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  const auto file = only_file(dir_);
  // A bit flip turning a digit into junk used to atof() to 0.0 and be served
  // as a "valid" result.
  std::ofstream(file, std::ios::trunc) << "sender1_bps=4.2e8\nsender2_bps=4x8\n"
                                          "jain2=0.9\nutilization=0.9\nretx_segments=1\n";
  EXPECT_FALSE(cache.load(cfg).has_value());
  EXPECT_FALSE(std::filesystem::exists(file)) << "corrupt entry must be evicted";
}

TEST_F(CacheTest, NonFiniteValuesRejectedAndDeleted) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  const auto file = only_file(dir_);
  std::ofstream(file, std::ios::trunc) << "sender1_bps=nan\nsender2_bps=inf\n"
                                          "jain2=0.9\nutilization=0.9\nretx_segments=1\n";
  EXPECT_FALSE(cache.load(cfg).has_value());
  EXPECT_FALSE(std::filesystem::exists(file));
}

TEST_F(CacheTest, TruncatedEntryRejectedAndDeleted) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  const auto file = only_file(dir_);
  // Simulate a crash mid-write (pre-atomic-rename format): required fields
  // missing entirely.
  std::ofstream(file, std::ios::trunc) << "sender1_bps=4.2e8\nsender2_bps=5.8e8\n";
  EXPECT_FALSE(cache.load(cfg).has_value());
  EXPECT_FALSE(std::filesystem::exists(file));
}

TEST_F(CacheTest, EvictionThenStoreRegenerates) {
  ResultCache cache(dir_);
  ExperimentConfig cfg;
  cache.store(fake_result(cfg));
  std::ofstream(only_file(dir_), std::ios::trunc) << "garbage\n";
  EXPECT_FALSE(cache.load(cfg).has_value());
  cache.store(fake_result(cfg));
  const auto loaded = cache.load(cfg);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->jain2, 0.973);
}

TEST_F(CacheTest, SeedIsPartOfTheKey) {
  ResultCache cache(dir_);
  ExperimentConfig a;
  a.seed = 1;
  ExperimentConfig b;
  b.seed = 2;
  cache.store(fake_result(a));
  EXPECT_TRUE(cache.load(a).has_value());
  EXPECT_FALSE(cache.load(b).has_value());
}

}  // namespace
}  // namespace elephant::exp
