#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace elephant::obs {
namespace {

TEST(PhaseProfilerTest, RecordsPerPhasePerLane) {
  PhaseProfiler prof(2);
  const std::size_t work = prof.register_phase("work");
  const std::size_t wait = prof.register_phase("wait");
  EXPECT_EQ(prof.phases(), 2u);
  EXPECT_EQ(prof.lanes(), 2u);
  EXPECT_EQ(prof.phase_name(work), "work");

  prof.record(work, 0, 0.5);
  prof.record(work, 0, 1.5);
  prof.record(work, 1, 2.0);
  prof.record(wait, 1, 0.25);

  EXPECT_EQ(prof.histogram(work, 0).count(), 2u);
  EXPECT_DOUBLE_EQ(prof.histogram(work, 0).sum(), 2.0);
  EXPECT_EQ(prof.histogram(work, 1).count(), 1u);
  EXPECT_EQ(prof.histogram(wait, 0).count(), 0u);
  EXPECT_EQ(prof.histogram(wait, 1).count(), 1u);
}

TEST(PhaseProfilerTest, SpanMeasuresElapsedAndNullProfilerIsFree) {
  PhaseProfiler prof(1);
  const std::size_t phase = prof.register_phase("span");
  {
    PhaseProfiler::Span span(&prof, phase, 0);
  }
  EXPECT_EQ(prof.histogram(phase, 0).count(), 1u);
  EXPECT_GE(prof.histogram(phase, 0).min(), 0.0);

  // Null profiler: constructing and destroying a Span must be a no-op.
  { PhaseProfiler::Span span(nullptr, 42, 42); }
}

TEST(PhaseProfilerTest, PublishMergesLanesIntoRegistry) {
  PhaseProfiler prof(3);
  const std::size_t work = prof.register_phase("shard_work");
  prof.register_phase("shard_drain");  // never recorded: must not publish
  prof.record(work, 0, 1.0);
  prof.record(work, 1, 2.0);
  prof.record(work, 2, 4.0);

  MetricsRegistry reg;
  prof.publish(reg);
  const LogLinHistogram& merged = reg.histogram("prof.shard_work");
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_DOUBLE_EQ(merged.sum(), 7.0);
  EXPECT_EQ(reg.histogram("prof.shard_drain").count(), 0u);
}

TEST(PhaseProfilerTest, PublishPerLaneAddsLaneBreakdown) {
  PhaseProfiler prof(2);
  const std::size_t work = prof.register_phase("w");
  prof.record(work, 0, 1.0);
  prof.record(work, 1, 3.0);

  MetricsRegistry reg;
  prof.publish(reg, /*per_lane=*/true);
  EXPECT_EQ(reg.histogram("prof.w").count(), 2u);
  EXPECT_EQ(reg.histogram("prof.w.lane0").count(), 1u);
  EXPECT_DOUBLE_EQ(reg.histogram("prof.w.lane1").sum(), 3.0);
}

TEST(PhaseProfilerTest, PublishTwiceAccumulates) {
  // publish() merges (it does not replace): two runs folded into one shared
  // registry see both runs' spans — the sweep-aggregation contract.
  PhaseProfiler prof(1);
  const std::size_t p = prof.register_phase("p");
  prof.record(p, 0, 1.0);
  MetricsRegistry reg;
  prof.publish(reg);
  prof.publish(reg);
  EXPECT_EQ(reg.histogram("prof.p").count(), 2u);
}

}  // namespace
}  // namespace elephant::obs
