#include "test_util.hpp"

namespace elephant::test {

net::Packet make_packet(net::FlowId flow, std::uint64_t seq, std::uint32_t size) {
  net::Packet p;
  p.flow = flow;
  p.src = 1;
  p.dst = 5;
  p.seq = seq;
  p.size = size;
  return p;
}

exp::ExperimentConfig quick_config(cca::CcaKind cca1, cca::CcaKind cca2, aqm::AqmKind aqm,
                                   double buffer_bdp, double bw, double duration_s) {
  exp::ExperimentConfig cfg;
  cfg.cca1 = cca1;
  cfg.cca2 = cca2;
  cfg.aqm = aqm;
  cfg.buffer_bdp = buffer_bdp;
  cfg.bottleneck_bps = bw;
  cfg.duration = sim::Time::seconds(duration_s);
  cfg.seed = 7;
  return cfg;
}

exp::ExperimentResult run_uncached(const exp::ExperimentConfig& cfg) {
  return exp::run_experiment(cfg);
}

}  // namespace elephant::test
