#include "aqm/fq_codel.hpp"

#include <gtest/gtest.h>

#include <map>

#include "test_util.hpp"

namespace elephant::aqm {
namespace {

using test::make_packet;

FqCodelConfig small_cfg(std::size_t limit = 1 << 24) {
  FqCodelConfig cfg;
  cfg.memory_limit_bytes = limit;
  return cfg;
}

TEST(FqCodel, SingleFlowFifoOrder) {
  sim::Scheduler sched;
  FqCodelQueue q(sched, small_cfg());
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_TRUE(q.enqueue(make_packet(1, i)));
  for (std::uint64_t i = 0; i < 10; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
}

TEST(FqCodel, RoundRobinInterleavesFlows) {
  sim::Scheduler sched;
  FqCodelQueue q(sched, small_cfg());
  // 2 flows, 20 packets each; service should alternate rather than drain
  // flow 1 first.
  for (std::uint64_t i = 0; i < 20; ++i) {
    (void)q.enqueue(make_packet(1, i));
    (void)q.enqueue(make_packet(2, 100 + i));
  }
  int first_ten_flow1 = 0;
  for (int i = 0; i < 10; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    if (p->flow == 1) ++first_ten_flow1;
  }
  EXPECT_GT(first_ten_flow1, 2);
  EXPECT_LT(first_ten_flow1, 8);
}

TEST(FqCodel, FairSharesAcrossManyFlows) {
  sim::Scheduler sched;
  FqCodelQueue q(sched, small_cfg());
  constexpr int kFlows = 8;
  for (std::uint64_t i = 0; i < 50; ++i) {
    for (int f = 1; f <= kFlows; ++f) {
      (void)q.enqueue(make_packet(static_cast<net::FlowId>(f), i));
    }
  }
  std::map<net::FlowId, int> served;
  for (int i = 0; i < kFlows * 20; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    ++served[p->flow];
  }
  for (const auto& [flow, count] : served) {
    EXPECT_NEAR(count, 20, 2) << "flow " << flow;
  }
}

TEST(FqCodel, OverflowCullsFattestQueue) {
  sim::Scheduler sched;
  FqCodelConfig cfg = small_cfg(10 * 8900);
  sim::Scheduler s2;
  FqCodelQueue q(sched, cfg);
  // Flow 1 hogs the buffer; flow 2 sends one packet. Overflow drops must
  // come from flow 1.
  for (std::uint64_t i = 0; i < 9; ++i) (void)q.enqueue(make_packet(1, i));
  (void)q.enqueue(make_packet(2, 100));
  EXPECT_EQ(q.stats().dropped_overflow, 0u);
  (void)q.enqueue(make_packet(1, 9));  // exceeds the limit
  EXPECT_EQ(q.stats().dropped_overflow, 1u);
  // Flow 2's packet must still be there: drain and look for it.
  bool saw_flow2 = false;
  while (auto p = q.dequeue()) {
    if (p->flow == 2) saw_flow2 = true;
  }
  EXPECT_TRUE(saw_flow2);
}

TEST(FqCodel, NewFlowsGetPriority) {
  sim::Scheduler sched;
  FqCodelQueue q(sched, small_cfg());
  // An established backlogged flow…
  for (std::uint64_t i = 0; i < 50; ++i) (void)q.enqueue(make_packet(1, i));
  (void)q.dequeue();  // flow 1 is now an "old" flow
  // …then a brand-new flow arrives: it must be served within one quantum's
  // worth of the old flow's service (the old flow's residual deficit may buy
  // it one more packet first).
  (void)q.enqueue(make_packet(2, 500));
  bool served_new = false;
  for (int i = 0; i < 2 && !served_new; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    served_new = p->flow == 2;
  }
  EXPECT_TRUE(served_new);
}

TEST(FqCodel, ActiveFlowCount) {
  sim::Scheduler sched;
  FqCodelQueue q(sched, small_cfg());
  EXPECT_EQ(q.active_flows(), 0u);
  (void)q.enqueue(make_packet(1, 0));
  (void)q.enqueue(make_packet(2, 0));
  (void)q.enqueue(make_packet(3, 0));
  EXPECT_EQ(q.active_flows(), 3u);
}

TEST(FqCodel, TotalsAreConsistent) {
  sim::Scheduler sched;
  FqCodelQueue q(sched, small_cfg());
  for (std::uint64_t i = 0; i < 30; ++i) {
    (void)q.enqueue(make_packet(static_cast<net::FlowId>(i % 3 + 1), i));
  }
  EXPECT_EQ(q.packet_length(), 30u);
  EXPECT_EQ(q.byte_length(), 30u * 8900u);
  std::size_t drained = 0;
  while (q.dequeue().has_value()) ++drained;
  EXPECT_EQ(drained, 30u);
  EXPECT_EQ(q.packet_length(), 0u);
  EXPECT_EQ(q.byte_length(), 0u);
}

TEST(FqCodel, CodelDropsPerFlowUnderStandingQueue) {
  sim::Scheduler sched;
  FqCodelQueue q(sched, small_cfg());
  // Keep a standing queue in one flow while time passes: per-flow CoDel must
  // eventually drop from it.
  for (std::uint64_t i = 0; i < 500; ++i) (void)q.enqueue(make_packet(1, i));
  for (int step = 0; step < 400; ++step) {
    sched.schedule_at(sim::Time::milliseconds(10) * (step + 1), [&, step] {
      (void)q.dequeue();
      (void)q.enqueue(make_packet(1, 1000 + static_cast<std::uint64_t>(step)));
    });
  }
  sched.run();
  EXPECT_GT(q.stats().dropped_early, 0u);
}

TEST(FqCodel, DistinctFlowsHashToDistinctBucketsUsually) {
  sim::Scheduler sched;
  FqCodelQueue q(sched, small_cfg());
  // 64 flows into 1024 buckets: expect nearly all distinct (birthday bound
  // allows a few collisions, active_flows ≥ 60).
  for (std::uint32_t f = 1; f <= 64; ++f) (void)q.enqueue(make_packet(f, 0));
  EXPECT_GE(q.active_flows(), 60u);
}

}  // namespace
}  // namespace elephant::aqm
