#include <gtest/gtest.h>

#include "aqm/codel.hpp"
#include "aqm/fq_codel.hpp"
#include "test_util.hpp"

namespace elephant::aqm {
namespace {

using test::make_packet;

net::Packet ect(net::FlowId flow, std::uint64_t seq) {
  net::Packet p = make_packet(flow, seq);
  p.ecn_capable = true;
  return p;
}

TEST(CodelEcn, MarksInsteadOfDroppingEctTraffic) {
  sim::Scheduler sched;
  CodelParams params;
  params.ecn = true;
  CodelQueue q(sched, std::size_t{1} << 26, params);
  // Standing queue with slow drain: CoDel must signal — via CE, not drops.
  for (std::uint64_t i = 0; i < 400; ++i) (void)q.enqueue(ect(1, i));
  std::uint64_t marked_seen = 0;
  for (int step = 0; step < 400; ++step) {
    sched.schedule_at(sim::Time::milliseconds(10) * (step + 1), [&, step] {
      auto p = q.dequeue();
      if (p && p->ecn_marked) ++marked_seen;
      (void)q.enqueue(ect(1, 1000 + static_cast<std::uint64_t>(step)));
    });
  }
  sched.run();
  EXPECT_GT(q.stats().ecn_marked, 0u);
  EXPECT_EQ(q.stats().dropped_early, 0u);
  EXPECT_EQ(marked_seen, q.stats().ecn_marked);
}

TEST(CodelEcn, NonEctStillDropped) {
  sim::Scheduler sched;
  CodelParams params;
  params.ecn = true;
  CodelQueue q(sched, std::size_t{1} << 26, params);
  for (std::uint64_t i = 0; i < 400; ++i) (void)q.enqueue(make_packet(1, i));
  for (int step = 0; step < 400; ++step) {
    sched.schedule_at(sim::Time::milliseconds(10) * (step + 1), [&, step] {
      (void)q.dequeue();
      (void)q.enqueue(make_packet(1, 1000 + static_cast<std::uint64_t>(step)));
    });
  }
  sched.run();
  EXPECT_GT(q.stats().dropped_early, 0u);
  EXPECT_EQ(q.stats().ecn_marked, 0u);
}

TEST(FqCodelEcn, PerFlowMarking) {
  sim::Scheduler sched;
  FqCodelConfig cfg;
  cfg.memory_limit_bytes = std::size_t{1} << 26;
  cfg.codel.ecn = true;
  FqCodelQueue q(sched, cfg);
  for (std::uint64_t i = 0; i < 400; ++i) (void)q.enqueue(ect(1, i));
  for (int step = 0; step < 400; ++step) {
    sched.schedule_at(sim::Time::milliseconds(10) * (step + 1), [&, step] {
      (void)q.dequeue();
      (void)q.enqueue(ect(1, 1000 + static_cast<std::uint64_t>(step)));
    });
  }
  sched.run();
  EXPECT_GT(q.stats().ecn_marked, 0u);
  EXPECT_EQ(q.stats().dropped_early, 0u);
}

TEST(EcnEndToEnd, Bbr2WithFqCodelEcnAvoidsLoss) {
  auto cfg = test::quick_config(cca::CcaKind::kBbrV2, cca::CcaKind::kBbrV2,
                                aqm::AqmKind::kFqCodel, 2.0, 100e6, 20);
  cfg.ecn = true;
  const auto res = test::run_uncached(cfg);
  EXPECT_GT(res.bottleneck.ecn_marked, 0u);
  EXPECT_EQ(res.bottleneck.dropped_early, 0u);
  EXPECT_GT(res.utilization, 0.6);
}

TEST(EcnEndToEnd, MarksNeverAppearWhenDisabled) {
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kFqCodel, 2.0, 100e6, 15);
  cfg.ecn = false;
  const auto res = test::run_uncached(cfg);
  EXPECT_EQ(res.bottleneck.ecn_marked, 0u);
}

}  // namespace
}  // namespace elephant::aqm
