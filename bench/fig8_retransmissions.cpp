// Figure 8 reproduction: retransmission counts during intra-CCA experiments,
// per AQM, at 2 and 16 BDP buffers. The paper's key shape: BBRv1 >> BBRv2 >
// HTCP > Reno ≈ CUBIC; FIFO retx fall with buffer size; RED/FQ_CODEL retx
// grow with bandwidth and are buffer-insensitive.

#include <cstdio>

#include "bench_util.hpp"
#include "exp/config.hpp"

namespace {

using namespace elephant;
using cca::CcaKind;

void panel(const char* name, aqm::AqmKind aqm, double bdp) {
  std::printf("\n(%s) AQM = %s, buffer = %g BDP  (retransmitted segments)\n", name,
              aqm::to_string(aqm).c_str(), bdp);
  std::printf("  %-10s", "CCA");
  for (const double bw : exp::paper_bandwidths()) {
    std::printf(" %10s", exp::bw_label(bw).c_str());
  }
  std::printf("\n");

  const CcaKind kinds[] = {CcaKind::kBbrV1, CcaKind::kBbrV2, CcaKind::kHtcp, CcaKind::kReno,
                           CcaKind::kCubic};
  for (const CcaKind k : kinds) {
    std::printf("  %-10s", cca::to_string(k).c_str());
    for (const double bw : exp::paper_bandwidths()) {
      exp::ExperimentConfig cfg;
      cfg.cca1 = k;
      cfg.cca2 = k;
      cfg.aqm = aqm;
      cfg.buffer_bdp = bdp;
      cfg.bottleneck_bps = bw;
      const auto res = bench::run(cfg);
      std::printf(" %10.0f", res.retx_segments);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "Figure 8: retransmissions (intra-CCA)",
      "BBRv1 retransmits by far the most (loss-blind); BBRv2 second; HTCP "
      "third; Reno/CUBIC lowest. FIFO: retx fall as buffers grow. RED & "
      "FQ_CODEL: retx rise with BW, insensitive to buffer size.");
  panel("a", aqm::AqmKind::kFifo, 2);
  panel("b", aqm::AqmKind::kFifo, 16);
  panel("c", aqm::AqmKind::kRed, 2);
  panel("d", aqm::AqmKind::kRed, 16);
  panel("e", aqm::AqmKind::kFqCodel, 2);
  panel("f", aqm::AqmKind::kFqCodel, 16);
  return 0;
}
