// Mixed-traffic study: how much do elephant CCA pairs hurt the mice?
//
// For each elephant CCA pair and each of the paper's three AQMs, run the
// mice-elephants workload (paper elephants + 40 staggered CUBIC mice with
// Pareto-distributed sizes) at 100 Mbps / 1 BDP and report the mice's FCT
// percentiles and slowdown next to the elephants' internal Jain index. The
// paper studies elephant-vs-elephant fairness; this sweep asks the follow-up
// question every shared link raises: which elephant mix is the worst
// neighbour for short interactive transfers, and how much does the AQM help?

#include <cstdio>

#include "bench_util.hpp"
#include "exp/config.hpp"
#include "workload/workload.hpp"

namespace {

using namespace elephant;
using cca::CcaKind;

const exp::ClassResult* find_class(const exp::AveragedResult& res, const char* name) {
  for (const exp::ClassResult& c : res.classes) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void panel(aqm::AqmKind aqm) {
  std::printf("\nAQM = %s\n", aqm::to_string(aqm).c_str());
  std::printf("  %-16s %9s %9s %9s %9s %7s %7s\n", "elephant pair", "p50 ms", "p95 ms",
              "p99 ms", "sd p50", "done", "eJain");

  const CcaKind kinds[] = {CcaKind::kBbrV1, CcaKind::kBbrV2, CcaKind::kHtcp, CcaKind::kReno,
                           CcaKind::kCubic};
  for (const CcaKind k : kinds) {
    exp::ExperimentConfig cfg;
    cfg.cca1 = k;
    cfg.cca2 = CcaKind::kCubic;
    cfg.aqm = aqm;
    cfg.buffer_bdp = 1.0;
    // 100 Mbps keeps the cells cheap; the mice finish well inside 40 s.
    cfg.bottleneck_bps = 100e6;
    cfg.duration = sim::Time::seconds(40);
    cfg.workload = workload::WorkloadSpec::mice_elephants();

    const auto res = bench::run(cfg);
    const exp::ClassResult* mice = find_class(res, "mice");
    const exp::ClassResult* elephants = find_class(res, "elephants");
    if (mice == nullptr) {
      std::printf("  %-16s  (no mice class in result)\n", bench::pair_label(cfg).c_str());
      continue;
    }
    std::printf("  %-16s %9.1f %9.1f %9.1f %9.2f %3u/%-3u %7.3f\n",
                bench::pair_label(cfg).c_str(), mice->fct_p50_s * 1e3, mice->fct_p95_s * 1e3,
                mice->fct_p99_s * 1e3, mice->slowdown_p50, mice->completed, mice->flows,
                elephants != nullptr ? elephants->jain : 0.0);
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "Mice among the elephants: short-flow FCT under elephant CCA pairs",
      "Deep-buffer FIFO under loss-based elephants bloats mice FCT by the "
      "standing queue; FQ-CoDel isolates the mice almost completely.");
  panel(aqm::AqmKind::kFifo);
  panel(aqm::AqmKind::kFqCodel);
  panel(aqm::AqmKind::kRed);
  return 0;
}
