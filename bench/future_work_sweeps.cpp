// Future-work sweeps: the two extensions the paper's conclusion names —
// (1) varying RTTs and (2) performance under injected packet loss — run as
// small parameter sweeps with the same harness. Not a paper figure; shapes
// here extend the study in the directions §6 proposes.

#include <cstdio>

#include "bench_util.hpp"
#include "exp/config.hpp"

int main() {
  using namespace elephant;
  using cca::CcaKind;

  bench::print_banner(
      "Future-work sweeps: RTT sensitivity and injected loss",
      "paper §6: 'we intend to ... observe performance under network "
      "anomalies (e.g. variable rates of packet loss), and RTTs'");

  std::printf("\n[RTT sweep] bbr1 vs cubic, FIFO, 2 BDP, 500M (buffer scales with BDP)\n");
  std::printf("  %-8s %12s %12s %7s %7s\n", "RTT(ms)", "bbr1(Mb/s)", "cubic(Mb/s)", "J",
              "util");
  for (const int rtt_ms : {10, 30, 62, 120, 240}) {
    exp::ExperimentConfig cfg;
    cfg.cca1 = CcaKind::kBbrV1;
    cfg.cca2 = CcaKind::kCubic;
    cfg.aqm = aqm::AqmKind::kFifo;
    cfg.buffer_bdp = 2;
    cfg.bottleneck_bps = 500e6;
    cfg.rtt = sim::Time::milliseconds(rtt_ms);
    const auto res = bench::run(cfg);
    std::printf("  %-8d %12s %12s %7.3f %7.3f\n", rtt_ms,
                bench::mbps(res.sender_bps[0]).c_str(),
                bench::mbps(res.sender_bps[1]).c_str(), res.jain2, res.utilization);
  }

  std::printf("\n[loss sweep] intra-CCA utilization under injected Bernoulli loss, "
              "FIFO, 2 BDP, 500M\n");
  std::printf("  %-9s", "loss");
  const CcaKind kinds[] = {CcaKind::kReno, CcaKind::kCubic, CcaKind::kHtcp, CcaKind::kBbrV1,
                           CcaKind::kBbrV2};
  for (const CcaKind k : kinds) std::printf(" %8s", cca::to_string(k).c_str());
  std::printf("\n");
  for (const double loss : {0.0, 0.0001, 0.001, 0.01}) {
    std::printf("  %-9g", loss);
    for (const CcaKind k : kinds) {
      exp::ExperimentConfig cfg;
      cfg.cca1 = k;
      cfg.cca2 = k;
      cfg.aqm = aqm::AqmKind::kFifo;
      cfg.buffer_bdp = 2;
      cfg.bottleneck_bps = 500e6;
      cfg.random_loss = loss;
      const auto res = bench::run(cfg);
      std::printf(" %8.3f", res.utilization);
    }
    std::printf("\n");
  }
  std::printf("\n(Loss-based CCAs collapse with random loss; BBRv1 shrugs it off — the\n"
              " same mechanism behind the paper's RED results.)\n");

  std::printf("\n[fixing RED] the paper's conclusion asks for RED parameter tuning at\n"
              "high BW; Adaptive RED (Floyd 2001) and PIE (RFC 8033) are the standard\n"
              "answers. Intra-CUBIC utilization at 2 BDP:\n");
  std::printf("  %-14s", "AQM");
  for (const double bw : {1e9, 10e9, 25e9}) {
    std::printf(" %8s", exp::bw_label(bw).c_str());
  }
  std::printf("\n");
  for (const aqm::AqmKind aqm :
       {aqm::AqmKind::kRed, aqm::AqmKind::kRedAdaptive, aqm::AqmKind::kPie}) {
    std::printf("  %-14s", aqm::to_string(aqm).c_str());
    for (const double bw : {1e9, 10e9, 25e9}) {
      exp::ExperimentConfig cfg;
      cfg.cca1 = CcaKind::kCubic;
      cfg.cca2 = CcaKind::kCubic;
      cfg.aqm = aqm;
      cfg.buffer_bdp = 2;
      cfg.bottleneck_bps = bw;
      const auto res = bench::run(cfg);
      std::printf(" %8.3f", res.utilization);
    }
    std::printf("\n");
  }
  return 0;
}
