// Future-work sweeps: the extensions the paper's conclusion names —
// (1) varying RTTs, (2) performance under injected packet loss, and
// (3) network anomalies (outages, degradation, bursty loss) — run as small
// parameter sweeps with the same harness. Not a paper figure; shapes here
// extend the study in the directions §6 proposes.

#include <cstdio>

#include "bench_util.hpp"
#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "fault/fault.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"

int main() {
  using namespace elephant;
  using cca::CcaKind;

  bench::print_banner(
      "Future-work sweeps: RTT sensitivity and injected loss",
      "paper §6: 'we intend to ... observe performance under network "
      "anomalies (e.g. variable rates of packet loss), and RTTs'");

  std::printf("\n[RTT sweep] bbr1 vs cubic, FIFO, 2 BDP, 500M (buffer scales with BDP)\n");
  std::printf("  %-8s %12s %12s %7s %7s\n", "RTT(ms)", "bbr1(Mb/s)", "cubic(Mb/s)", "J",
              "util");
  for (const int rtt_ms : {10, 30, 62, 120, 240}) {
    exp::ExperimentConfig cfg;
    cfg.cca1 = CcaKind::kBbrV1;
    cfg.cca2 = CcaKind::kCubic;
    cfg.aqm = aqm::AqmKind::kFifo;
    cfg.buffer_bdp = 2;
    cfg.bottleneck_bps = 500e6;
    cfg.rtt = sim::Time::milliseconds(rtt_ms);
    const auto res = bench::run(cfg);
    std::printf("  %-8d %12s %12s %7.3f %7.3f\n", rtt_ms,
                bench::mbps(res.sender_bps[0]).c_str(),
                bench::mbps(res.sender_bps[1]).c_str(), res.jain2, res.utilization);
  }

  std::printf("\n[loss sweep] intra-CCA utilization under injected Bernoulli loss, "
              "FIFO, 2 BDP, 500M\n");
  std::printf("  %-9s", "loss");
  const CcaKind kinds[] = {CcaKind::kReno, CcaKind::kCubic, CcaKind::kHtcp, CcaKind::kBbrV1,
                           CcaKind::kBbrV2};
  for (const CcaKind k : kinds) std::printf(" %8s", cca::to_string(k).c_str());
  std::printf("\n");
  for (const double loss : {0.0, 0.0001, 0.001, 0.01}) {
    std::printf("  %-9g", loss);
    for (const CcaKind k : kinds) {
      exp::ExperimentConfig cfg;
      cfg.cca1 = k;
      cfg.cca2 = k;
      cfg.aqm = aqm::AqmKind::kFifo;
      cfg.buffer_bdp = 2;
      cfg.bottleneck_bps = 500e6;
      cfg.random_loss = loss;
      const auto res = bench::run(cfg);
      std::printf(" %8.3f", res.utilization);
    }
    std::printf("\n");
  }
  std::printf("\n(Loss-based CCAs collapse with random loss; BBRv1 shrugs it off — the\n"
              " same mechanism behind the paper's RED results.)\n");

  std::printf("\n[fixing RED] the paper's conclusion asks for RED parameter tuning at\n"
              "high BW; Adaptive RED (Floyd 2001) and PIE (RFC 8033) are the standard\n"
              "answers. Intra-CUBIC utilization at 2 BDP:\n");
  std::printf("  %-14s", "AQM");
  for (const double bw : {1e9, 10e9, 25e9}) {
    std::printf(" %8s", exp::bw_label(bw).c_str());
  }
  std::printf("\n");
  for (const aqm::AqmKind aqm :
       {aqm::AqmKind::kRed, aqm::AqmKind::kRedAdaptive, aqm::AqmKind::kPie}) {
    std::printf("  %-14s", aqm::to_string(aqm).c_str());
    for (const double bw : {1e9, 10e9, 25e9}) {
      exp::ExperimentConfig cfg;
      cfg.cca1 = CcaKind::kCubic;
      cfg.cca2 = CcaKind::kCubic;
      cfg.aqm = aqm;
      cfg.buffer_bdp = 2;
      cfg.bottleneck_bps = bw;
      const auto res = bench::run(cfg);
      std::printf(" %8.3f", res.utilization);
    }
    std::printf("\n");
  }

  std::printf("\n[link flap] bbr1 vs cubic, FIFO, 2 BDP, 500M: a mid-run outage, with\n"
              "fault apply/revert events captured by the flight recorder and the\n"
              "post-run conservation invariants checked on every cell:\n");
  std::printf("  %-10s %12s %12s %7s %6s %7s\n", "outage(s)", "bbr1(Mb/s)", "cubic(Mb/s)",
              "util", "rtos", "faults");
  for (const double down_s : {0.0, 0.5, 2.0}) {
    exp::ExperimentConfig cfg;
    cfg.cca1 = CcaKind::kBbrV1;
    cfg.cca2 = CcaKind::kCubic;
    cfg.aqm = aqm::AqmKind::kFifo;
    cfg.buffer_bdp = 2;
    cfg.bottleneck_bps = 500e6;
    if (down_s > 0) {
      cfg.fault_plan = fault::FaultPlan::link_flap(
          sim::Time::seconds(cfg.effective_duration().sec() / 3),
          sim::Time::seconds(down_s));
    }
    trace::MemorySink sink;
    trace::Tracer tracer(sink);
    tracer.enable_only({trace::RecordType::kFault});
    cfg.tracer = &tracer;
    const auto res = exp::run_experiment(cfg);  // invariants on by default
    int fault_records = 0;
    for (const auto& r : sink.records()) {
      fault_records += r.type == trace::RecordType::kFault ? 1 : 0;
    }
    std::printf("  %-10g %12s %12s %7.3f %6llu %7d\n", down_s,
                bench::mbps(res.sender_bps[0]).c_str(),
                bench::mbps(res.sender_bps[1]).c_str(), res.utilization,
                static_cast<unsigned long long>(res.rtos), fault_records);
  }
  std::printf("(Timeout recovery after the outage; both CCAs refill the pipe.)\n");

  std::printf("\n[bursty loss] Gilbert-Elliott vs Bernoulli at the same stationary rate,\n"
              "intra-CCA utilization, FIFO, 2 BDP, 500M (burst = mean 20-packet runs):\n");
  std::printf("  %-22s", "loss model");
  for (const CcaKind k : kinds) std::printf(" %8s", cca::to_string(k).c_str());
  std::printf("\n");
  for (const bool bursty : {false, true}) {
    const double loss = 0.003;
    std::printf("  %-22s", bursty ? "gilbert-elliott 0.003" : "bernoulli 0.003");
    for (const CcaKind k : kinds) {
      exp::ExperimentConfig cfg;
      cfg.cca1 = k;
      cfg.cca2 = k;
      cfg.aqm = aqm::AqmKind::kFifo;
      cfg.buffer_bdp = 2;
      cfg.bottleneck_bps = 500e6;
      if (bursty) {
        cfg.ge_loss = fault::GilbertElliottParams::from_loss(loss, 20);
      } else {
        cfg.random_loss = loss;
      }
      const auto res = bench::run(cfg);
      std::printf(" %8.3f", res.utilization);
    }
    std::printf("\n");
  }
  std::printf("(Same mean loss, different texture: burstiness concentrates the damage\n"
              " into fewer congestion events, so loss-based CCAs keep more throughput\n"
              " than under independent drops.)\n");
  return 0;
}
