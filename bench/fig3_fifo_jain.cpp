// Figure 3 reproduction: Jain's fairness index under FIFO. Panels (a)-(b):
// inter-CCA pairs vs CUBIC at 2 and 16 BDP. Panels (c)-(d): intra-CCA pairs
// at 2 and 16 BDP.

#include <cstdio>

#include "bench_util.hpp"
#include "exp/config.hpp"

namespace {

using namespace elephant;
using cca::CcaKind;

void panel(const char* name, bool intra, double bdp) {
  std::printf("\n(%s) %s-CCA, buffer = %g BDP\n", name, intra ? "intra" : "inter", bdp);
  std::printf("  %-16s", "pair");
  for (const double bw : exp::paper_bandwidths()) {
    std::printf(" %8s", exp::bw_label(bw).c_str());
  }
  std::printf("\n");

  const CcaKind kinds[] = {CcaKind::kBbrV1, CcaKind::kBbrV2, CcaKind::kHtcp, CcaKind::kReno,
                           CcaKind::kCubic};
  for (const CcaKind k : kinds) {
    if (intra && k == CcaKind::kCubic) continue;  // cubic-cubic shown in inter panel
    exp::ExperimentConfig cfg;
    cfg.cca1 = k;
    cfg.cca2 = intra ? k : CcaKind::kCubic;
    cfg.aqm = aqm::AqmKind::kFifo;
    cfg.buffer_bdp = bdp;
    std::printf("  %-16s", bench::pair_label(cfg).c_str());
    for (const double bw : exp::paper_bandwidths()) {
      cfg.bottleneck_bps = bw;
      const auto res = bench::run(cfg);
      std::printf(" %8.3f", res.jain2);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "Figure 3: Jain's fairness index, AQM = FIFO",
      "Inter-CCA fairness varies with buffer size and BW (BBRv1 dips at 16 BDP "
      "for 1-10G); intra-CCA pairs stay near J = 1 everywhere.");
  panel("a", /*intra=*/false, 2);
  panel("b", /*intra=*/false, 16);
  panel("c", /*intra=*/true, 2);
  panel("d", /*intra=*/true, 16);
  return 0;
}
