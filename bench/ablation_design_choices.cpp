// Ablation bench for the design choices called out in DESIGN.md §6:
//   1. Host pacing for loss-based CCAs (off by default, like hosts without
//      sch_fq) — does pacing change CUBIC's fate against BBRv1?
//   2. ECN (off in the paper's runs) — what RED+ECN would have done.
//   3. Plain CoDel vs FQ-CoDel — how much of FQ-CoDel's fairness comes from
//      fair queuing rather than the CoDel drop law.
//   4. TSO aggregation factor — sensitivity of macroscopic results to the
//      simulation's aggregation substitution.

#include <cstdio>

#include "bench_util.hpp"
#include "exp/config.hpp"

namespace {

using namespace elephant;
using cca::CcaKind;

void report(const char* label, const exp::AveragedResult& res) {
  std::printf("  %-34s S1=%8s Mb/s  S2=%8s Mb/s  J=%6.3f  util=%6.3f  retx=%8.0f\n",
              label, bench::mbps(res.sender_bps[0]).c_str(),
              bench::mbps(res.sender_bps[1]).c_str(), res.jain2, res.utilization,
              res.retx_segments);
}

}  // namespace

int main() {
  bench::print_banner("Ablations: pacing, ECN, CoDel-vs-FQ-CoDel, aggregation",
                      "design-choice sensitivity study (not a paper figure)");

  exp::ExperimentConfig base;
  base.cca1 = CcaKind::kBbrV1;
  base.cca2 = CcaKind::kCubic;
  base.aqm = aqm::AqmKind::kFifo;
  base.buffer_bdp = 2;
  base.bottleneck_bps = 500e6;

  std::printf("\n[1] host pacing for loss-based CCAs (bbr1 vs cubic, FIFO, 2 BDP, 500M)\n");
  report("ack-clocked (default)", bench::run(base));
  {
    auto paced = base;
    paced.pace_all = true;
    report("paced at 2*cwnd/srtt", bench::run(paced));
  }

  std::printf("\n[2] ECN with RED (bbr2 vs cubic, 2 BDP, 500M)\n");
  {
    auto red = base;
    red.cca1 = CcaKind::kBbrV2;
    red.aqm = aqm::AqmKind::kRed;
    report("RED, ECN off (paper setup)", bench::run(red));
    auto ecn = red;
    ecn.ecn = true;
    report("RED, ECN on", bench::run(ecn));
  }

  std::printf("\n[3] plain CoDel vs FQ-CoDel (bbr1 vs cubic, 2 BDP, 500M)\n");
  {
    auto codel = base;
    codel.aqm = aqm::AqmKind::kCodel;
    report("codel (single queue)", bench::run(codel));
    auto fq = base;
    fq.aqm = aqm::AqmKind::kFqCodel;
    report("fq_codel (per-flow queues)", bench::run(fq));
  }

  std::printf("\n[4] TSO aggregation sensitivity (cubic vs cubic, FIFO, 2 BDP, 1G)\n");
  for (const std::uint32_t agg : {1u, 2u, 4u, 8u}) {
    auto cfg = base;
    cfg.cca1 = CcaKind::kCubic;
    cfg.bottleneck_bps = 1e9;
    cfg.aggregation = agg;
    char label[32];
    std::snprintf(label, sizeof(label), "aggregation = %u segments", agg);
    report(label, bench::run(cfg));
  }
  return 0;
}
