#pragma once

#include <string>
#include <vector>

#include "exp/config.hpp"
#include "exp/runner.hpp"

namespace elephant::bench {

/// Run one configuration with the bench defaults: ELEPHANT_REPS repetitions
/// (default 1) and the shared on-disk result cache, printing progress to
/// stderr so long sweeps are watchable.
[[nodiscard]] exp::AveragedResult run(const exp::ExperimentConfig& cfg);

/// Banner for a reproduced figure/table, including the scaling caveats.
void print_banner(const std::string& title, const std::string& paper_claim);

/// "bbr1 vs cubic" style pair label.
[[nodiscard]] std::string pair_label(const exp::ExperimentConfig& cfg);

/// Mb/s with sensible width.
[[nodiscard]] std::string mbps(double bps);

}  // namespace elephant::bench
