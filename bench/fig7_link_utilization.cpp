// Figure 7 reproduction: overall link utilization φ during intra-CCA
// experiments, per AQM, at 2 and 16 BDP buffers. The paper's key result:
// FIFO achieves near-full utilization everywhere; FQ_CODEL almost
// everywhere except 25G; RED lags badly from 1G upward.

#include <cstdio>

#include "bench_util.hpp"
#include "exp/config.hpp"

namespace {

using namespace elephant;
using cca::CcaKind;

void panel(const char* name, aqm::AqmKind aqm, double bdp) {
  std::printf("\n(%s) AQM = %s, buffer = %g BDP  (link utilization phi)\n", name,
              aqm::to_string(aqm).c_str(), bdp);
  std::printf("  %-10s", "CCA");
  for (const double bw : exp::paper_bandwidths()) {
    std::printf(" %8s", exp::bw_label(bw).c_str());
  }
  std::printf("\n");

  const CcaKind kinds[] = {CcaKind::kBbrV1, CcaKind::kBbrV2, CcaKind::kHtcp, CcaKind::kReno,
                           CcaKind::kCubic};
  for (const CcaKind k : kinds) {
    std::printf("  %-10s", cca::to_string(k).c_str());
    for (const double bw : exp::paper_bandwidths()) {
      exp::ExperimentConfig cfg;
      cfg.cca1 = k;
      cfg.cca2 = k;
      cfg.aqm = aqm;
      cfg.buffer_bdp = bdp;
      cfg.bottleneck_bps = bw;
      const auto res = bench::run(cfg);
      std::printf(" %8.3f", res.utilization);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "Figure 7: overall link utilization (intra-CCA)",
      "FIFO: ~full utilization for all CCAs. FQ_CODEL: near-full except at "
      "25G. RED: large losses in utilization from 1G upward; only BBRv1 "
      "exceeds 20G at 25G.");
  panel("a", aqm::AqmKind::kFifo, 2);
  panel("b", aqm::AqmKind::kFifo, 16);
  panel("c", aqm::AqmKind::kRed, 2);
  panel("d", aqm::AqmKind::kRed, 16);
  panel("e", aqm::AqmKind::kFqCodel, 2);
  panel("f", aqm::AqmKind::kFqCodel, 16);
  return 0;
}
