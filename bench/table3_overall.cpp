// Table 3 reproduction: overall performance comparison. For every CCA pair ×
// AQM combination, averages across all buffer sizes and bandwidths of:
//   Avg(phi)      — link utilization (Eq. 3)
//   Avg(RR)       — retransmissions relative to CUBIC-vs-CUBIC (Eq. 4)
//   Avg(J_index)  — per-sender Jain fairness (Eq. 2)
// This is the full 810-cell matrix; results are cached in ./results so the
// figure benches and re-runs share work.

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "exp/config.hpp"
#include "exp/sweep.hpp"

int main() {
  using namespace elephant;
  using cca::CcaKind;

  bench::print_banner(
      "Table 3: overall performance comparison (810 configurations)",
      "BBRv1 wastes resources (huge RR, no benefit); Reno weak; CUBIC strong "
      "alone but loses head-to-head; HTCP & BBRv2 best overall, BBRv2 "
      "slightly ahead on utilization at the cost of more retransmissions; "
      "RED worst for fairness and high-BW utilization.");

  // Key: (aqm, buffer, bw) → cubic-vs-cubic retransmissions (the RR baseline).
  std::map<std::string, double> cubic_baseline;
  auto cell_key = [](const exp::ExperimentConfig& cfg) {
    return aqm::to_string(cfg.aqm) + "/" + std::to_string(cfg.buffer_bdp) + "/" +
           exp::bw_label(cfg.bottleneck_bps);
  };

  // Pass 1: the CUBIC-CUBIC baseline for every (aqm, buffer, bw) cell.
  for (const aqm::AqmKind aqm : exp::paper_aqms()) {
    for (const double bdp : exp::paper_buffer_bdps()) {
      for (const double bw : exp::paper_bandwidths()) {
        exp::ExperimentConfig cfg;
        cfg.cca1 = CcaKind::kCubic;
        cfg.cca2 = CcaKind::kCubic;
        cfg.aqm = aqm;
        cfg.buffer_bdp = bdp;
        cfg.bottleneck_bps = bw;
        const auto res = bench::run(cfg);
        cubic_baseline[cell_key(cfg)] = std::max(res.retx_segments, 1.0);
      }
    }
  }

  std::printf("\n%-16s %-9s %10s %10s %12s\n", "CCA1 vs CCA2", "AQM", "Avg(phi)",
              "Avg(RR)", "Avg(Jindex)");

  // Pass 2: every pair × AQM, averaged over the 30 (buffer, bw) cells.
  // Print in the paper's row order: per AQM, intra/inter interleaved.
  const std::pair<CcaKind, CcaKind> rows[] = {
      {CcaKind::kBbrV1, CcaKind::kBbrV1}, {CcaKind::kBbrV1, CcaKind::kCubic},
      {CcaKind::kBbrV2, CcaKind::kBbrV2}, {CcaKind::kBbrV2, CcaKind::kCubic},
      {CcaKind::kHtcp, CcaKind::kHtcp},   {CcaKind::kHtcp, CcaKind::kCubic},
      {CcaKind::kReno, CcaKind::kReno},   {CcaKind::kReno, CcaKind::kCubic},
      {CcaKind::kCubic, CcaKind::kCubic},
  };

  for (const aqm::AqmKind aqm : exp::paper_aqms()) {
    for (const auto& [c1, c2] : rows) {
      double sum_phi = 0;
      double sum_rr = 0;
      double sum_j = 0;
      int cells = 0;
      for (const double bdp : exp::paper_buffer_bdps()) {
        for (const double bw : exp::paper_bandwidths()) {
          exp::ExperimentConfig cfg;
          cfg.cca1 = c1;
          cfg.cca2 = c2;
          cfg.aqm = aqm;
          cfg.buffer_bdp = bdp;
          cfg.bottleneck_bps = bw;
          const auto res = bench::run(cfg);
          sum_phi += res.utilization;
          sum_rr += res.retx_segments / cubic_baseline[cell_key(cfg)];
          sum_j += res.jain2;
          ++cells;
        }
      }
      std::printf("%-16s %-9s %10.3f %10.3f %12.3f\n",
                  (cca::to_string(c1) + " vs " + cca::to_string(c2)).c_str(),
                  aqm::to_string(aqm).c_str(), sum_phi / cells, sum_rr / cells,
                  sum_j / cells);
    }
    std::printf("\n");
  }
  return 0;
}
