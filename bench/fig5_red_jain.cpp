// Figure 5 reproduction: Jain's fairness index under RED, inter- and
// intra-CCA, at 2 and 16 BDP buffers. The paper's key numbers: BBRv1 vs
// CUBIC falls to J ~ 0.5 (total starvation); intra-CCA pairs stay fair
// except BBRv1's RTO-driven instability.

#include <cstdio>

#include "bench_util.hpp"
#include "exp/config.hpp"

namespace {

using namespace elephant;
using cca::CcaKind;

void panel(const char* name, bool intra, double bdp) {
  std::printf("\n(%s) %s-CCA, buffer = %g BDP\n", name, intra ? "intra" : "inter", bdp);
  std::printf("  %-16s", "pair");
  for (const double bw : exp::paper_bandwidths()) {
    std::printf(" %8s", exp::bw_label(bw).c_str());
  }
  std::printf("\n");

  const CcaKind kinds[] = {CcaKind::kBbrV1, CcaKind::kBbrV2, CcaKind::kHtcp, CcaKind::kReno,
                           CcaKind::kCubic};
  for (const CcaKind k : kinds) {
    if (intra && k == CcaKind::kCubic) continue;
    exp::ExperimentConfig cfg;
    cfg.cca1 = k;
    cfg.cca2 = intra ? k : CcaKind::kCubic;
    cfg.aqm = aqm::AqmKind::kRed;
    cfg.buffer_bdp = bdp;
    std::printf("  %-16s", bench::pair_label(cfg).c_str());
    for (const double bw : exp::paper_bandwidths()) {
      cfg.bottleneck_bps = bw;
      const auto res = bench::run(cfg);
      std::printf(" %8.3f", res.jain2);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "Figure 5: Jain's fairness index, AQM = RED",
      "BBRv1 vs CUBIC collapses toward J = 0.5; BBRv2 vs CUBIC also unfair; "
      "HTCP/Reno vs CUBIC fair; intra-CCA fair except BBRv1's RTO churn.");
  panel("a", false, 2);
  panel("b", false, 16);
  panel("c", true, 2);
  panel("d", true, 16);
  return 0;
}
