// Figure 2 reproduction: per-sender throughput of BBRv1/BBRv2/HTCP/Reno vs
// CUBIC under FIFO, as a function of buffer size (0.5–16 BDP), one panel per
// bottleneck bandwidth. The paper's key shape: the challenger wins at small
// buffers, CUBIC overtakes past an equilibrium point that moves right with
// bandwidth.

#include <cstdio>

#include "bench_util.hpp"
#include "exp/config.hpp"

int main() {
  using namespace elephant;
  using cca::CcaKind;

  bench::print_banner(
      "Figure 2: per-sender throughput vs buffer size, AQM = FIFO",
      "BBRv1/BBRv2 beat CUBIC below a BW-dependent equilibrium buffer size; "
      "CUBIC overtakes beyond it (2xBDP inflight cap). HTCP and Reno lose "
      "share to CUBIC as buffers deepen.");

  const CcaKind challengers[] = {CcaKind::kBbrV1, CcaKind::kBbrV2, CcaKind::kHtcp,
                                 CcaKind::kReno};
  const char* panels = "abcdefghijklmnopqrst";
  int panel = 0;

  for (const CcaKind challenger : challengers) {
    for (const double bw : exp::paper_bandwidths()) {
      std::printf("\n(%c) %s vs cubic @ %s\n", panels[panel++],
                  cca::to_string(challenger).c_str(), exp::bw_label(bw).c_str());
      std::printf("  %-11s %14s %14s\n", "buffer(BDP)",
                  (cca::to_string(challenger) + "(Mb/s)").c_str(), "cubic(Mb/s)");
      for (const double bdp : exp::paper_buffer_bdps()) {
        exp::ExperimentConfig cfg;
        cfg.cca1 = challenger;
        cfg.cca2 = CcaKind::kCubic;
        cfg.aqm = aqm::AqmKind::kFifo;
        cfg.buffer_bdp = bdp;
        cfg.bottleneck_bps = bw;
        const auto res = bench::run(cfg);
        std::printf("  %-11g %14s %14s\n", bdp, bench::mbps(res.sender_bps[0]).c_str(),
                    bench::mbps(res.sender_bps[1]).c_str());
      }
    }
  }
  return 0;
}
