// Micro-benchmarks for the simulator's hot paths: event scheduling, queue
// disciplines, CCA ack processing, and a full end-to-end cell. These bound
// how much simulated traffic a wall-clock second buys and guided the
// aggregation factors documented in DESIGN.md.

#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>

#include "aqm/fifo.hpp"
#include "aqm/fq_codel.hpp"
#include "aqm/red.hpp"
#include "cca/congestion_control.hpp"
#include "exp/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace elephant;

// Steady-state schedule+fire churn against a populated heap. The pre-fix
// version of this benchmark never let the queue grow past one element, so it
// measured the trivial empty-heap fast path instead of the O(log n) sift
// work a real simulation (thousands of pending timers) pays per event.
// `range(0)` is the standing backlog: 0 reproduces the old measurement,
// 1k/100k are representative of small and large experiment cells.
void BM_SchedulerChurn(benchmark::State& state) {
  sim::Scheduler sched;
  const std::int64_t depth = state.range(0);
  // Backlog parked far in the future so it stays pending for the whole run.
  constexpr std::int64_t kFar = std::int64_t{1} << 60;
  for (std::int64_t i = 0; i < depth; ++i) {
    sched.schedule_at(sim::Time::nanoseconds(kFar + i), [] {});
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    sched.schedule_at(sim::Time::nanoseconds(++t), [] {});
    sched.run_until(sim::Time::nanoseconds(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerChurn)->Arg(0)->Arg(1 << 10)->Arg(100'000);

// BM_SchedulerChurn with live telemetry gauges attached: the registry gate
// for instrumentation is "<2% over the uninstrumented churn at the same
// depth" (checked against BENCH_micro.json by the CI perf script). This is
// the worst case for the pull-based design — one run_until (and therefore one
// publish_metrics, three relaxed stores) per event.
void BM_SchedulerChurnInstrumented(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::SchedulerMetrics metrics;
  metrics.events_executed = &reg.gauge("sim.events_executed");
  metrics.heap_depth = &reg.gauge("sim.heap_depth");
  metrics.heap_peak = &reg.gauge("sim.heap_peak");
  sim::Scheduler sched;
  sched.set_metrics(&metrics);
  const std::int64_t depth = state.range(0);
  constexpr std::int64_t kFar = std::int64_t{1} << 60;
  for (std::int64_t i = 0; i < depth; ++i) {
    sched.schedule_at(sim::Time::nanoseconds(kFar + i), [] {});
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    sched.schedule_at(sim::Time::nanoseconds(++t), [] {});
    sched.run_until(sim::Time::nanoseconds(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerChurnInstrumented)->Arg(0)->Arg(1 << 10)->Arg(100'000);

// The telemetry primitives in isolation: one counter bump + gauge store +
// histogram record per item, the cost a fully instrumented per-packet path
// would add.
void BM_MetricsHotPath(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& counter = reg.counter("sim.events");
  obs::Gauge& gauge = reg.gauge("tcp.cwnd_segments");
  obs::LogLinHistogram& hist = reg.histogram("queue.sojourn_s");
  double v = 1e-6;
  for (auto _ : state) {
    counter.add();
    gauge.set(v);
    hist.record(v);
    v = v < 1.0 ? v * 1.0001 : 1e-6;  // sweep across octaves
  }
  benchmark::DoNotOptimize(hist.quantile(0.99));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHotPath);

// Histogram record alone, on a value walking the full range: bucket_index is
// one frexp + a few integer ops, so this should sit within a small factor of
// a plain array increment.
void BM_HistogramRecord(benchmark::State& state) {
  obs::LogLinHistogram hist;
  double v = 1e-9;
  for (auto _ : state) {
    hist.record(v);
    v = v < 1e9 ? v * 1.001 : 1e-9;
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// One PhaseProfiler span open+close per item: two steady_clock reads plus a
// histogram record. This is the per-window cost the sharded engine pays per
// (phase, lane) when a profiler is attached — it must stay far below a
// window's worth of event work to hold the <2% telemetry budget. The Arg is
// 1 for a live profiler, 0 for the detached (nullptr) span, whose cost must
// be indistinguishable from an empty loop.
void BM_ProfilerOverhead(benchmark::State& state) {
  obs::PhaseProfiler prof(1);
  const std::size_t phase = prof.register_phase("bench");
  obs::PhaseProfiler* attached = state.range(0) != 0 ? &prof : nullptr;
  for (auto _ : state) {
    obs::PhaseProfiler::Span span(attached, phase, 0);
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerOverhead)->Arg(0)->Arg(1);

// Same churn with a capture too large for the inline buffer: exercises the
// pooled-block fallback (the pre-swap engine heap-allocated every oversized
// std::function exactly here).
void BM_SchedulerLargeCapture(benchmark::State& state) {
  sim::Scheduler sched;
  std::array<std::uint64_t, 16> payload{};  // 128 B: bigger than the 64 B SBO
  std::int64_t t = 0;
  for (auto _ : state) {
    payload[0] = static_cast<std::uint64_t>(t);
    sched.schedule_at(sim::Time::nanoseconds(++t),
                      [payload] { benchmark::DoNotOptimize(payload[0]); });
    sched.run_until(sim::Time::nanoseconds(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerLargeCapture);

// Schedule-then-cancel churn against a populated heap: the indexed heap
// removes the entry eagerly; the pre-swap engine grew a tombstone set.
void BM_SchedulerCancelChurn(benchmark::State& state) {
  sim::Scheduler sched;
  constexpr std::int64_t kFar = std::int64_t{1} << 60;
  for (std::int64_t i = 0; i < 1024; ++i) {
    sched.schedule_at(sim::Time::nanoseconds(kFar + i), [] {});
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    const sim::EventId id = sched.schedule_at(sim::Time::nanoseconds(kFar - (++t)), [] {});
    sched.cancel(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerCancelChurn);

// Re-arm + fire cycle of one TimerHandle against a populated heap — the RTO
// / pacing / delivery-line pattern. The pre-swap equivalent is a fresh
// schedule_at per cycle (captured in BM_SchedulerChurn).
void BM_TimerRearmChurn(benchmark::State& state) {
  sim::Scheduler sched;
  constexpr std::int64_t kFar = std::int64_t{1} << 60;
  for (std::int64_t i = 0; i < 1024; ++i) {
    sched.schedule_at(sim::Time::nanoseconds(kFar + i), [] {});
  }
  sim::TimerHandle timer;
  timer.init(sched, [] {});
  std::int64_t t = 0;
  for (auto _ : state) {
    timer.rearm(sim::Time::nanoseconds(++t));
    sched.run_until(sim::Time::nanoseconds(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerRearmChurn);

net::Packet bench_packet(std::uint64_t i) {
  net::Packet p;
  p.flow = static_cast<net::FlowId>(i % 64);
  p.seq = i;
  p.size = 8900;
  return p;
}

void BM_FifoEnqueueDequeue(benchmark::State& state) {
  sim::Scheduler sched;
  aqm::FifoQueue q(sched, std::size_t{1} << 30);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)q.enqueue(bench_packet(i++));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoEnqueueDequeue);

void BM_RedEnqueueDequeue(benchmark::State& state) {
  sim::Scheduler sched;
  aqm::RedConfig cfg;
  cfg.limit_bytes = std::size_t{1} << 30;
  aqm::RedQueue q(sched, cfg, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)q.enqueue(bench_packet(i++));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedEnqueueDequeue);

void BM_FqCodelEnqueueDequeue(benchmark::State& state) {
  sim::Scheduler sched;
  aqm::FqCodelConfig cfg;
  cfg.memory_limit_bytes = std::size_t{1} << 30;
  aqm::FqCodelQueue q(sched, cfg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)q.enqueue(bench_packet(i++));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FqCodelEnqueueDequeue);

void BM_CcaOnAck(benchmark::State& state, cca::CcaKind kind) {
  auto cc = cca::make_cca(kind, cca::CcaParams{});
  cca::AckSample ack;
  ack.rtt = sim::Time::milliseconds(62);
  ack.min_rtt = ack.rtt;
  ack.acked_segments = 2;
  ack.delivery_rate = 1000;
  double t = 0;
  double delivered = 0;
  for (auto _ : state) {
    t += 1e-4;
    delivered += 2;
    ack.now = sim::Time::seconds(t);
    ack.delivered_segments = delivered;
    ack.inflight_segments = 100;
    ack.round_start = (state.iterations() % 50) == 0;
    cc->on_ack(ack);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_CcaOnAck, reno, cca::CcaKind::kReno);
BENCHMARK_CAPTURE(BM_CcaOnAck, cubic, cca::CcaKind::kCubic);
BENCHMARK_CAPTURE(BM_CcaOnAck, htcp, cca::CcaKind::kHtcp);
BENCHMARK_CAPTURE(BM_CcaOnAck, bbr1, cca::CcaKind::kBbrV1);
BENCHMARK_CAPTURE(BM_CcaOnAck, bbr2, cca::CcaKind::kBbrV2);

void BM_EndToEndCell(benchmark::State& state) {
  // One short experiment cell per iteration: measures whole-stack
  // events/second (reported as items = executed events).
  for (auto _ : state) {
    exp::ExperimentConfig cfg;
    cfg.cca1 = cca::CcaKind::kCubic;
    cfg.cca2 = cca::CcaKind::kCubic;
    cfg.bottleneck_bps = 100e6;
    cfg.duration = sim::Time::seconds(5);
    const auto res = exp::run_experiment(cfg);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(res.events_executed));
  }
}
BENCHMARK(BM_EndToEndCell)->Unit(benchmark::kMillisecond);

void BM_ShardedCell(benchmark::State& state) {
  // The ISSUE's scaling cell: a many-flow paper cell run through the
  // flow-sharded engine at Arg(0) shards (1 = the legacy single-threaded
  // path). A short window of a high-flow-count 1G cell keeps one iteration
  // in the hundreds of milliseconds while still giving every lane real
  // work. Items = executed events, so items/s is comparable across shard
  // counts; speedup is this benchmark at N shards vs Arg(1).
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    exp::ExperimentConfig cfg;
    cfg.cca1 = cca::CcaKind::kCubic;
    cfg.cca2 = cca::CcaKind::kBbrV1;
    cfg.aqm = aqm::AqmKind::kFifo;
    cfg.buffer_bdp = 1.0;
    cfg.bottleneck_bps = 1e9;
    cfg.total_flows = 40;
    cfg.duration = sim::Time::seconds(2);
    cfg.seed = 20240817;
    cfg.shards = shards;
    const auto res = exp::run_experiment(cfg);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(res.events_executed));
  }
}
// Real time is the speedup headline (wall clock per cell); process CPU time
// is what the perf gate compares — it sums all lanes' work, so it is stable
// across core counts where main-thread CPU would be meaningless.
BENCHMARK(BM_ShardedCell)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ManyFlowCell(benchmark::State& state) {
  // The compact-state headline: Arg(0) finite CUBIC flows (constant total
  // work — ~600k units split across the fleet) through a 10G FIFO cell at
  // aggregation 1, so per-ACK scoreboard walks and per-flow state dominate.
  // items = executed events; bytes_per_flow is the slab-arena + peak
  // scoreboard footprint over the flow count, read from the run's memory
  // gauges — the two numbers the perf gate tracks for this layout.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  double bytes_per_flow = 0;
  for (auto _ : state) {
    obs::MetricsRegistry reg;
    exp::ExperimentConfig cfg;
    cfg.cca1 = cca::CcaKind::kCubic;
    cfg.cca2 = cca::CcaKind::kCubic;
    cfg.aqm = aqm::AqmKind::kFifo;
    cfg.buffer_bdp = 1.0;
    cfg.bottleneck_bps = 10e9;
    cfg.aggregation = 1;
    cfg.duration = sim::Time::seconds(5);
    cfg.seed = 20260809;
    cfg.metrics = &reg;
    workload::TrafficClass flows;
    flows.name = "manyflow";
    flows.kind = workload::ClassKind::kFinite;
    flows.cca = cca::CcaKind::kCubic;
    flows.count = n;
    flows.start_window = sim::Time::seconds(4);
    flows.size =
        workload::SizeSpec::fixed(std::max(4.0, 600'000.0 / n) * 8900.0);
    cfg.workload.classes.push_back(flows);
    const auto res = exp::run_experiment(cfg);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(res.events_executed));
    bytes_per_flow = (reg.gauge("mem.flow_arena_bytes").value() +
                      reg.gauge("mem.scoreboard_peak_bytes").value()) /
                     n;
  }
  state.counters["bytes_per_flow"] = benchmark::Counter(bytes_per_flow);
}
BENCHMARK(BM_ManyFlowCell)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_SimSecondsPerWallSecond(benchmark::State& state) {
  // The capacity planner's number: how many simulated seconds of a paper
  // cell (CUBIC vs BBRv1, FIFO, 1 BDP, 100 Mbps) one wall-clock second buys.
  // Reported as the "sim_s_per_wall_s" rate counter.
  double sim_seconds = 0;
  for (auto _ : state) {
    exp::ExperimentConfig cfg;
    cfg.cca1 = cca::CcaKind::kCubic;
    cfg.cca2 = cca::CcaKind::kBbrV1;
    cfg.aqm = aqm::AqmKind::kFifo;
    cfg.buffer_bdp = 1.0;
    cfg.bottleneck_bps = 100e6;
    cfg.duration = sim::Time::seconds(5);
    cfg.seed = 20240817;
    const auto res = exp::run_experiment(cfg);
    benchmark::DoNotOptimize(res.jain2);
    sim_seconds += cfg.duration.sec();
  }
  state.counters["sim_s_per_wall_s"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimSecondsPerWallSecond)->Unit(benchmark::kMillisecond);

}  // namespace
