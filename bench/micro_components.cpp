// Micro-benchmarks for the simulator's hot paths: event scheduling, queue
// disciplines, CCA ack processing, and a full end-to-end cell. These bound
// how much simulated traffic a wall-clock second buys and guided the
// aggregation factors documented in DESIGN.md.

#include <benchmark/benchmark.h>

#include "aqm/fifo.hpp"
#include "aqm/fq_codel.hpp"
#include "aqm/red.hpp"
#include "cca/congestion_control.hpp"
#include "exp/runner.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace elephant;

void BM_SchedulerChurn(benchmark::State& state) {
  sim::Scheduler sched;
  std::int64_t t = 0;
  for (auto _ : state) {
    sched.schedule_at(sim::Time::nanoseconds(++t), [] {});
    sched.run_until(sim::Time::nanoseconds(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerChurn);

net::Packet bench_packet(std::uint64_t i) {
  net::Packet p;
  p.flow = static_cast<net::FlowId>(i % 64);
  p.seq = i;
  p.size = 8900;
  return p;
}

void BM_FifoEnqueueDequeue(benchmark::State& state) {
  sim::Scheduler sched;
  aqm::FifoQueue q(sched, std::size_t{1} << 30);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)q.enqueue(bench_packet(i++));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoEnqueueDequeue);

void BM_RedEnqueueDequeue(benchmark::State& state) {
  sim::Scheduler sched;
  aqm::RedConfig cfg;
  cfg.limit_bytes = std::size_t{1} << 30;
  aqm::RedQueue q(sched, cfg, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)q.enqueue(bench_packet(i++));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedEnqueueDequeue);

void BM_FqCodelEnqueueDequeue(benchmark::State& state) {
  sim::Scheduler sched;
  aqm::FqCodelConfig cfg;
  cfg.memory_limit_bytes = std::size_t{1} << 30;
  aqm::FqCodelQueue q(sched, cfg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)q.enqueue(bench_packet(i++));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FqCodelEnqueueDequeue);

void BM_CcaOnAck(benchmark::State& state, cca::CcaKind kind) {
  auto cc = cca::make_cca(kind, cca::CcaParams{});
  cca::AckSample ack;
  ack.rtt = sim::Time::milliseconds(62);
  ack.min_rtt = ack.rtt;
  ack.acked_segments = 2;
  ack.delivery_rate = 1000;
  double t = 0;
  double delivered = 0;
  for (auto _ : state) {
    t += 1e-4;
    delivered += 2;
    ack.now = sim::Time::seconds(t);
    ack.delivered_segments = delivered;
    ack.inflight_segments = 100;
    ack.round_start = (state.iterations() % 50) == 0;
    cc->on_ack(ack);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_CcaOnAck, reno, cca::CcaKind::kReno);
BENCHMARK_CAPTURE(BM_CcaOnAck, cubic, cca::CcaKind::kCubic);
BENCHMARK_CAPTURE(BM_CcaOnAck, htcp, cca::CcaKind::kHtcp);
BENCHMARK_CAPTURE(BM_CcaOnAck, bbr1, cca::CcaKind::kBbrV1);
BENCHMARK_CAPTURE(BM_CcaOnAck, bbr2, cca::CcaKind::kBbrV2);

void BM_EndToEndCell(benchmark::State& state) {
  // One short experiment cell per iteration: measures whole-stack
  // events/second (reported as items = executed events).
  for (auto _ : state) {
    exp::ExperimentConfig cfg;
    cfg.cca1 = cca::CcaKind::kCubic;
    cfg.cca2 = cca::CcaKind::kCubic;
    cfg.bottleneck_bps = 100e6;
    cfg.duration = sim::Time::seconds(5);
    const auto res = exp::run_experiment(cfg);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(res.events_executed));
  }
}
BENCHMARK(BM_EndToEndCell)->Unit(benchmark::kMillisecond);

}  // namespace
