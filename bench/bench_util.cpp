#include "bench_util.hpp"

#include <cstdio>

namespace elephant::bench {

exp::AveragedResult run(const exp::ExperimentConfig& cfg) {
  std::fprintf(stderr, "  [run] %-45s ...", cfg.label().c_str());
  std::fflush(stderr);
  const auto res = exp::run_averaged(cfg, exp::default_repetitions());
  std::fprintf(stderr, " J=%.3f util=%.3f\n", res.jain2, res.utilization);
  return res;
}

void print_banner(const std::string& title, const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("----------------------------------------------------------------\n");
  std::printf("Paper observation: %s\n", paper_claim.c_str());
  std::printf("Durations are scaled per bandwidth (see DESIGN.md); set\n");
  std::printf("ELEPHANT_DURATION_SCALE / ELEPHANT_REPS for full-length runs.\n");
  std::printf("================================================================\n");
}

std::string pair_label(const exp::ExperimentConfig& cfg) {
  return cca::to_string(cfg.cca1) + " vs " + cca::to_string(cfg.cca2);
}

std::string mbps(double bps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", bps / 1e6);
  return buf;
}

}  // namespace elephant::bench
