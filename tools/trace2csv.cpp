// trace2csv: normalize a flight-recorder trace to CSV on stdout.
//
// Reads a trace written by CsvSink or JsonlSink (format auto-detected per
// line, so concatenated or mixed files work), optionally filters by record
// type and/or flow, and emits canonical CSV. The round trip is lossless:
// timestamps stay integer nanoseconds and values keep max_digits10 form.
//
// Usage:
//   trace2csv <trace-file> [--type cwnd_update] [--flow 3]
//   trace2csv -            # read stdin

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "trace/codec.hpp"
#include "trace/trace.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <trace-file|-> [--type <record-type>] [--flow <id>]\n"
               "record types:", prog);
  for (std::size_t i = 0; i < elephant::trace::kRecordTypeCount; ++i) {
    std::fprintf(stderr, " %s",
                 elephant::trace::to_string(static_cast<elephant::trace::RecordType>(i)));
  }
  std::fprintf(stderr, "\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elephant::trace;

  std::string path;
  std::optional<RecordType> only_type;
  std::optional<std::uint32_t> only_flow;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--type") == 0 && i + 1 < argc) {
      RecordType t;
      if (!record_type_from_string(argv[++i], &t)) return usage(argv[0]);
      only_type = t;
    } else if (std::strcmp(argv[i], "--flow") == 0 && i + 1 < argc) {
      only_flow = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (argv[i][0] != '-' || std::strcmp(argv[i], "-") == 0) {
      if (!path.empty()) return usage(argv[0]);  // two trace files
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
  }
  std::istream& in = path == "-" ? std::cin : file;

  std::string out = csv_header();
  out += '\n';
  std::fputs(out.c_str(), stdout);

  std::string line;
  std::uint64_t emitted = 0;
  std::uint64_t skipped = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceRecord r;
    const bool ok = line.front() == '{' ? parse_jsonl(line, &r) : parse_csv(line, &r);
    if (!ok) {
      // Headers of concatenated CSV files land here too; count silently
      // unless nothing at all parses.
      ++skipped;
      continue;
    }
    if (only_type && r.type != *only_type) continue;
    if (only_flow && r.flow != *only_flow) continue;
    out.clear();
    append_csv(r, &out);
    std::fputs(out.c_str(), stdout);
    ++emitted;
  }
  if (emitted == 0 && skipped > 0) {
    std::fprintf(stderr, "no parsable trace records in %s (%llu lines skipped)\n",
                 path.c_str(), static_cast<unsigned long long>(skipped));
    return 1;
  }
  return 0;
}
