// elephant — command-line front end for the experiment harness.
//
//   elephant run   [--cca1 K] [--cca2 K] [--aqm A] [--bdp X] [--bw BPS]
//                  [--flows N] [--duration S] [--seed S] [--rtt MS]
//                  [--loss P] [--ecn] [--reps N]
//                  [--workload PRESET] [--workload-cdf FILE]
//                  [--stats-interval S] [--metrics FILE]
//   elephant sweep [--aqm A] [--bw BPS] [--pairs inter|intra|all] [--reps N]
//                  [--threads N] [--retries N] [--event-budget N]
//                  [--wall-budget S] [--manifest PATH] [--resume]
//                  [--worker-id ID] [--lease-s S] [--backoff S]
//                  [--workload PRESET] [--workload-cdf FILE]
//                  [--stats-interval S] [--metrics FILE]
//   elephant list  (CCAs, AQMs, workload presets, and the paper's axis values)
//
// --workload mixes extra traffic classes (mice, Poisson web transfers, on/off
// sources) in with the paper's elephants; per-class FCT percentiles and byte
// shares are printed under the main row. --workload-cdf replaces the finite
// classes' size distribution with an empirical CDF file of
// "<bytes> <cum_prob>" lines.
//
// `run` prints one row; `sweep` prints a table over all buffer sizes for the
// selected slice, using (and filling) the shared on-disk result cache.
// Sweeps run under the resilient engine: a crashing or budget-tripping cell
// is reported and skipped, --manifest journals every cell to a JSONL file,
// and --resume re-executes only cells without a successful journal entry.
//
// A manifest also turns the sweep into a crash-tolerant shared work queue:
// start N `elephant sweep ... --manifest M --resume --worker-id wK` processes
// on one host and they divide the cells through per-cell leases in the
// journal (a SIGKILLed worker's in-flight cells are stolen after --lease-s).
// SIGINT/SIGTERM drain gracefully: the in-flight cell finishes and is
// journaled, nothing new is claimed, and the exit code reports the drain.
//
// sweep exit codes: 0 all cells succeeded; 1 some cells permanently failed
// (or the sweep aborted, e.g. manifest unwritable); 2 usage error; 3 drained
// by signal with cells left unattempted.
//
// --stats-interval S enables the self-profiling heartbeat: every S seconds
// of wall time one JSON snapshot of the runtime metrics (event counts, queue
// sojourn/srtt histograms, sweep progress and ETA) is appended to the
// --metrics file (default metrics.jsonl, next to the manifest for sweeps)
// and a progress line is printed to stderr.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <exception>
#include <string>
#include <unistd.h>
#include <vector>

#include <fstream>

#include "exp/config.hpp"
#include "exp/report.hpp"
#include "exp/result_digest.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "mc/choice_trace.hpp"
#include "mc/explorer.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"

namespace {

using namespace elephant;

/// Graceful-drain flag, set by SIGINT/SIGTERM. The sweep engine polls it:
/// in-flight cells finish and are journaled, nothing further is claimed.
std::atomic<bool> g_cancel{false};

extern "C" void on_drain_signal(int) {
  if (g_cancel.exchange(true)) {
    // Second signal: the user really means it. 130 = interrupted.
    ::_exit(130);
  }
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: elephant <run|sweep|list> [options]\n"
               "  run   --cca1 bbr1 --cca2 cubic --aqm fifo --bdp 2 --bw 1e9\n"
               "        [--flows N] [--duration S] [--seed S] [--rtt MS]\n"
               "        [--loss P] [--ecn] [--reps N] [--shards N]\n"
               "        [--workload paper|mice-elephants|poisson-web|onoff]\n"
               "        [--workload-cdf FILE]\n"
               "        [--stats-interval S] [--metrics FILE]\n"
               "  sweep --aqm fifo --bw 1e9 [--pairs inter|intra|all] [--reps N]\n"
               "        [--threads N] [--shards N] [--retries N] [--event-budget N]\n"
               "        [--wall-budget S] [--manifest PATH] [--resume]\n"
               "        [--worker-id ID] [--lease-s S] [--backoff S]\n"
               "        [--workload PRESET] [--workload-cdf FILE]\n"
               "        [--stats-interval S] [--metrics FILE]\n"
               "  explore [run config flags] [--fault-loss T:RATE:DUR]\n"
               "        [--fault-flap T:DOWN_MS:COUNT]\n"
               "        [--depth N] [--schedules N] [--horizon S]\n"
               "        [--schedule-events N] [--jain-floor X] [--starvation-window S]\n"
               "        [--retx-storm N] [--trace-out FILE]\n"
               "  explore --replay FILE [run config flags] [--replay-trace OUT.csv]\n"
               "  report --manifest PATH [--metrics FILE ...] [--json FILE]\n"
               "        [--md FILE] [--top N]\n"
               "  list\n"
               "fairness episodes (run and sweep): --episodes turns on the windowed\n"
               "share-imbalance detector; --episode-window S, --episode-enter J,\n"
               "--episode-exit J tune it; --episodes-out FILE appends episodes.jsonl\n"
               "(run only). Episode knobs are part of the cell identity (cache key).\n"
               "report: merge a sweep's manifest + per-worker metrics journals +\n"
               "episode summaries into one document (markdown to stdout; --json and\n"
               "--md write files; --metrics may repeat, default: metrics*.jsonl next\n"
               "to the manifest).\n"
               "run --check-digest N: execute the cell N times and fail (exit 1) with a\n"
               "field-level diff if any repetition's metrics digest drifts.\n"
               "explore: bounded-depth systematic schedule exploration (scheduler ties,\n"
               "fault/GE loss branches) with state-hash dedup; oracle violations write a\n"
               "replayable choice trace. --replay re-executes a stored trace, verifies the\n"
               "end-state hash, and writes a flight-recorder CSV of the failure.\n"
               "multi-worker: run N sweeps with the same --manifest plus --resume and\n"
               "unique --worker-id values; cells are leased through the journal and a\n"
               "killed worker's cells are re-claimed after --lease-s (default 60).\n"
               "exit codes: 0 ok, 1 failed cells or abort, 2 usage, 3 signal drain\n");
  std::exit(2);
}

struct Args {
  std::string cmd;
  exp::ExperimentConfig cfg;
  std::string pairs = "all";
  int reps = exp::default_repetitions();
  int threads = 0;
  int retries = 0;
  std::uint64_t event_budget = 0;
  double wall_budget_s = 0;
  std::string manifest;
  bool resume = false;
  std::string worker_id;
  double lease_s = 60;
  double backoff_s = 0.25;
  double stats_interval_s = 0;
  std::string metrics_path;
  std::vector<std::string> report_metrics;  ///< explicit journals for `report`
  std::string report_json;
  std::string report_md;
  std::size_t report_top = 10;
  int check_digest = 0;
  mc::ExplorerOptions explore;
  std::string replay_path;
  std::string replay_trace = "replay_trace.csv";
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.cmd = argv[1];
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--cca1")) {
      a.cfg.cca1 = cca::cca_kind_from_string(need(i));
    } else if (!std::strcmp(arg, "--cca2")) {
      a.cfg.cca2 = cca::cca_kind_from_string(need(i));
    } else if (!std::strcmp(arg, "--aqm")) {
      a.cfg.aqm = aqm::aqm_kind_from_string(need(i));
    } else if (!std::strcmp(arg, "--bdp")) {
      a.cfg.buffer_bdp = std::atof(need(i));
    } else if (!std::strcmp(arg, "--bw")) {
      a.cfg.bottleneck_bps = std::atof(need(i));
    } else if (!std::strcmp(arg, "--flows")) {
      a.cfg.total_flows = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (!std::strcmp(arg, "--shards")) {
      const int n = std::atoi(need(i));
      if (n < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        std::exit(2);
      }
      a.cfg.shards = static_cast<std::uint32_t>(n);
    } else if (!std::strcmp(arg, "--duration")) {
      a.cfg.duration = sim::Time::seconds(std::atof(need(i)));
    } else if (!std::strcmp(arg, "--seed")) {
      a.cfg.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (!std::strcmp(arg, "--rtt")) {
      a.cfg.rtt = sim::Time::milliseconds(std::atoll(need(i)));
    } else if (!std::strcmp(arg, "--loss")) {
      a.cfg.random_loss = std::atof(need(i));
    } else if (!std::strcmp(arg, "--ecn")) {
      a.cfg.ecn = true;
    } else if (!std::strcmp(arg, "--reps")) {
      a.reps = std::atoi(need(i));
    } else if (!std::strcmp(arg, "--pairs")) {
      a.pairs = need(i);
    } else if (!std::strcmp(arg, "--threads")) {
      a.threads = std::atoi(need(i));
    } else if (!std::strcmp(arg, "--retries")) {
      a.retries = std::atoi(need(i));
    } else if (!std::strcmp(arg, "--event-budget")) {
      a.event_budget = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (!std::strcmp(arg, "--wall-budget")) {
      a.wall_budget_s = std::atof(need(i));
    } else if (!std::strcmp(arg, "--manifest")) {
      a.manifest = need(i);
    } else if (!std::strcmp(arg, "--resume")) {
      a.resume = true;
    } else if (!std::strcmp(arg, "--worker-id")) {
      a.worker_id = need(i);
    } else if (!std::strcmp(arg, "--lease-s")) {
      a.lease_s = std::atof(need(i));
    } else if (!std::strcmp(arg, "--backoff")) {
      a.backoff_s = std::atof(need(i));
    } else if (!std::strcmp(arg, "--stats-interval")) {
      a.stats_interval_s = std::atof(need(i));
    } else if (!std::strcmp(arg, "--metrics")) {
      a.metrics_path = need(i);
      a.report_metrics.push_back(a.metrics_path);  // `report` accepts repeats
    } else if (!std::strcmp(arg, "--episodes")) {
      a.cfg.episodes.enabled = true;
    } else if (!std::strcmp(arg, "--episode-window")) {
      a.cfg.episodes.enabled = true;
      a.cfg.episodes.window_s = std::atof(need(i));
    } else if (!std::strcmp(arg, "--episode-enter")) {
      a.cfg.episodes.enabled = true;
      a.cfg.episodes.enter_jain = std::atof(need(i));
    } else if (!std::strcmp(arg, "--episode-exit")) {
      a.cfg.episodes.enabled = true;
      a.cfg.episodes.exit_jain = std::atof(need(i));
    } else if (!std::strcmp(arg, "--episodes-out")) {
      a.cfg.episodes.enabled = true;
      a.cfg.episodes.jsonl_path = need(i);
    } else if (!std::strcmp(arg, "--json")) {
      a.report_json = need(i);
    } else if (!std::strcmp(arg, "--md")) {
      a.report_md = need(i);
    } else if (!std::strcmp(arg, "--top")) {
      a.report_top = static_cast<std::size_t>(std::atoi(need(i)));
    } else if (!std::strcmp(arg, "--fault-loss")) {
      double start = 0, rate = 0, dur = 0;
      if (std::sscanf(need(i), "%lf:%lf:%lf", &start, &rate, &dur) != 3) usage();
      for (const fault::FaultEvent& e :
           fault::FaultPlan::loss_burst(sim::Time::seconds(start), rate,
                                        sim::Time::seconds(dur))
               .events) {
        a.cfg.fault_plan.add(e);
      }
    } else if (!std::strcmp(arg, "--fault-flap")) {
      double start = 0, down_ms = 0;
      int count = 0;
      if (std::sscanf(need(i), "%lf:%lf:%d", &start, &down_ms, &count) != 3) usage();
      for (const fault::FaultEvent& e :
           fault::FaultPlan::link_flap(sim::Time::seconds(start),
                                       sim::Time::seconds(down_ms / 1e3), count)
               .events) {
        a.cfg.fault_plan.add(e);
      }
    } else if (!std::strcmp(arg, "--check-digest")) {
      a.check_digest = std::atoi(need(i));
    } else if (!std::strcmp(arg, "--depth")) {
      a.explore.max_depth = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (!std::strcmp(arg, "--schedules")) {
      a.explore.max_schedules = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (!std::strcmp(arg, "--horizon")) {
      a.explore.horizon_s = std::atof(need(i));
    } else if (!std::strcmp(arg, "--schedule-events")) {
      a.explore.max_schedule_events = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (!std::strcmp(arg, "--jain-floor")) {
      a.explore.jain_floor = std::atof(need(i));
    } else if (!std::strcmp(arg, "--starvation-window")) {
      a.explore.starvation_window_s = std::atof(need(i));
    } else if (!std::strcmp(arg, "--retx-storm")) {
      a.explore.retx_storm_segments = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (!std::strcmp(arg, "--trace-out")) {
      a.explore.trace_out = need(i);
    } else if (!std::strcmp(arg, "--replay")) {
      a.replay_path = need(i);
    } else if (!std::strcmp(arg, "--replay-trace")) {
      a.replay_trace = need(i);
    } else if (!std::strcmp(arg, "--workload")) {
      const char* name = need(i);
      if (!workload::WorkloadSpec::from_name(name, &a.cfg.workload)) {
        std::fprintf(stderr, "unknown workload preset: %s (try:", name);
        for (const std::string& p : workload::WorkloadSpec::preset_names()) {
          std::fprintf(stderr, " %s", p.c_str());
        }
        std::fprintf(stderr, ")\n");
        std::exit(2);
      }
    } else if (!std::strcmp(arg, "--workload-cdf")) {
      const char* path = need(i);
      workload::SizeSpec spec;
      std::string error;
      if (!workload::SizeSpec::load_cdf_file(path, &spec, &error)) {
        std::fprintf(stderr, "--workload-cdf: %s\n", error.c_str());
        std::exit(2);
      }
      bool applied = false;
      for (workload::TrafficClass& c : a.cfg.workload.classes) {
        if (c.kind != workload::ClassKind::kElephant) {
          c.size = spec;
          applied = true;
        }
      }
      if (!applied) {
        std::fprintf(stderr,
                     "--workload-cdf: no finite/on-off class to apply it to "
                     "(pass --workload first)\n");
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage();
    }
  }
  if (a.cfg.episodes.enabled && !a.cfg.episodes.valid()) {
    std::fprintf(stderr,
                 "invalid episode thresholds: need window > 0 and "
                 "0 < enter <= exit <= 1 (got window=%g enter=%g exit=%g)\n",
                 a.cfg.episodes.window_s, a.cfg.episodes.enter_jain,
                 a.cfg.episodes.exit_jain);
    std::exit(2);
  }
  return a;
}

void print_row(const exp::AveragedResult& res) {
  std::printf("%-34s S1=%9.2fM S2=%9.2fM J=%6.3f util=%6.3f retx=%9.0f rtos=%5.0f\n",
              res.config.label().c_str(), res.sender_bps[0] / 1e6, res.sender_bps[1] / 1e6,
              res.jain2, res.utilization, res.retx_segments, res.rtos);
  for (const exp::ClassResult& c : res.classes) {
    std::printf("  class %-12s flows=%u done=%u share=%5.3f jain=%5.3f bps=%9.2fM",
                c.name.c_str(), c.flows, c.completed, c.share, c.jain,
                c.throughput_bps / 1e6);
    if (c.completed > 0) {
      std::printf(" fct_p50=%.1fms p95=%.1fms p99=%.1fms slowdown_p50=%.2f p99=%.2f",
                  c.fct_p50_s * 1e3, c.fct_p95_s * 1e3, c.fct_p99_s * 1e3, c.slowdown_p50,
                  c.slowdown_p99);
    }
    std::printf("\n");
  }
  if (res.episodes > 0) {
    std::printf(
        "  episodes %.1f/rep  worst_jain=%5.3f at t=%.1fs victim=flow%u cause=%s\n",
        res.episodes, res.episode_worst_jain, res.episode_worst_t_s,
        res.episode_victim, res.episode_cause.c_str());
  } else if (res.config.episodes.enabled) {
    std::printf("  episodes: none detected\n");
  }
}

/// --check-digest N: run the identical cell N times and require every
/// repetition's metrics digest to be bit-identical to the first. A mismatch
/// prints a field-level diff (which metric drifted, both values) instead of
/// two opaque hashes, and exits nonzero — the determinism smoke a user can
/// point at any configuration, not just the golden-pinned ones.
int cmd_check_digest(const Args& a) {
  if (a.check_digest < 2) {
    std::fprintf(stderr, "--check-digest needs N >= 2 runs to compare\n");
    return 2;
  }
  const exp::ExperimentResult first = exp::run_experiment(a.cfg);
  const std::uint64_t want = exp::metrics_digest(first);
  for (int rep = 2; rep <= a.check_digest; ++rep) {
    const exp::ExperimentResult res = exp::run_experiment(a.cfg);
    const std::uint64_t got = exp::metrics_digest(res);
    if (got == want) continue;
    std::fprintf(stderr,
                 "check-digest: run %d of %s diverged (digest %016llx != %016llx):\n",
                 rep, a.cfg.id().c_str(), static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    for (const std::string& line : exp::diff_results(first, res)) {
      std::fprintf(stderr, "  %s\n", line.c_str());
    }
    return 1;
  }
  std::printf("check-digest: %d runs of %s bit-identical (digest %016llx)\n",
              a.check_digest, a.cfg.id().c_str(), static_cast<unsigned long long>(want));
  return 0;
}

int cmd_run(const Args& a) {
  if (a.check_digest != 0) return cmd_check_digest(a);
  if (a.stats_interval_s <= 0) {
    print_row(exp::run_averaged(a.cfg, a.reps));
    return 0;
  }
  // Heartbeat for a single run: counters/gauges are atomics, safe to
  // snapshot while the simulation thread runs; histograms are written
  // lock-free by that thread, so live ticks exclude them (the final
  // snapshot after the run includes everything).
  obs::MetricsRegistry reg;
  exp::ExperimentConfig cfg = a.cfg;
  cfg.metrics = &reg;
  obs::Heartbeat::Options hb;
  hb.interval_s = a.stats_interval_s;
  hb.jsonl_path = a.metrics_path.empty() ? "metrics.jsonl" : a.metrics_path;
  obs::Heartbeat heartbeat(reg, hb);
  heartbeat.start();
  print_row(exp::run_averaged(cfg, a.reps));
  heartbeat.stop();
  return 0;
}

int cmd_sweep(const Args& a) {
  std::vector<std::pair<cca::CcaKind, cca::CcaKind>> pairs;
  for (const auto& p : exp::paper_cca_pairs()) {
    const bool intra = p.first == p.second;
    if (a.pairs == "all" || (a.pairs == "intra" && intra) ||
        (a.pairs == "inter" && !intra)) {
      pairs.push_back(p);
    }
  }
  const auto& bdps = exp::paper_buffer_bdps();
  std::vector<exp::ExperimentConfig> configs;
  configs.reserve(pairs.size() * bdps.size());
  for (const auto& [c1, c2] : pairs) {
    for (const double bdp : bdps) {
      exp::ExperimentConfig cfg = a.cfg;
      cfg.cca1 = c1;
      cfg.cca2 = c2;
      cfg.buffer_bdp = bdp;
      configs.push_back(cfg);
    }
  }

  exp::SweepOptions opts;
  opts.repetitions = a.reps;
  opts.threads = a.threads;
  opts.max_retries = a.retries;
  opts.run_event_budget = a.event_budget;
  opts.run_wall_budget_seconds = a.wall_budget_s;
  opts.manifest_path = a.manifest;
  opts.resume = a.resume;
  opts.worker_id = a.worker_id;
  opts.lease_s = a.lease_s;
  opts.backoff_base_s = a.backoff_s;
  opts.cancel = &g_cancel;
  opts.stats_interval_s = a.stats_interval_s;
  opts.metrics_path = a.metrics_path;
  // The heartbeat's own progress lines replace the carriage-return ticker
  // (interleaving the two garbles the terminal).
  if (a.stats_interval_s <= 0) {
    opts.on_result = [](const exp::AveragedResult&, std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r%zu/%zu cells", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    };
  }
  const exp::SweepReport report = exp::run_sweep_resilient(configs, opts);

  std::printf("%-18s", "pair \\ buffer");
  for (const double bdp : bdps) std::printf("  %6g BDP", bdp);
  std::printf("   (Jain index, %s @ %s)\n", aqm::to_string(a.cfg.aqm).c_str(),
              exp::bw_label(a.cfg.bottleneck_bps).c_str());
  std::size_t i = 0;
  for (const auto& [c1, c2] : pairs) {
    std::printf("%-18s", (cca::to_string(c1) + " vs " + cca::to_string(c2)).c_str());
    for (std::size_t b = 0; b < bdps.size(); ++b, ++i) {
      const exp::RunRecord& rec = report.records[i];
      if (rec.success()) {
        std::printf("  %10.3f", rec.result.jain2);
      } else if (rec.status == exp::RunStatus::kSkipped) {
        std::printf("  %10s", "-");
      } else {
        std::printf("  %10s", rec.status == exp::RunStatus::kTimedOut ? "t/o" : "fail");
      }
    }
    std::printf("\n");
  }

  std::printf("sweep: %zu ok, %zu retried, %zu failed, %zu timed out",
              report.count(exp::RunStatus::kOk), report.count(exp::RunStatus::kRetried),
              report.count(exp::RunStatus::kFailed),
              report.count(exp::RunStatus::kTimedOut));
  if (report.skipped() > 0) std::printf(", %zu skipped", report.skipped());
  if (a.resume || !a.manifest.empty()) {
    std::size_t resumed = 0;
    for (const auto& rec : report.records) resumed += rec.resumed ? 1 : 0;
    if (resumed > 0 || a.resume) {
      std::printf(" (%zu resumed from %s)", resumed, a.manifest.c_str());
    }
  }
  std::printf("\n");
  for (std::size_t k = 0; k < report.records.size(); ++k) {
    const exp::RunRecord& rec = report.records[k];
    if (!rec.success() && rec.status != exp::RunStatus::kSkipped) {
      std::fprintf(stderr, "  cell %zu [%s]: %s\n", k, configs[k].label().c_str(),
                   rec.error.c_str());
    }
  }
  if (report.failed() > 0) {
    std::fprintf(stderr, "sweep: %zu cells permanently failed\n", report.failed());
    return 1;
  }
  if (report.skipped() > 0) {
    std::fprintf(stderr, "sweep: drained by signal, %zu cells not attempted\n",
                 report.skipped());
    return 3;
  }
  return 0;
}

int cmd_explore(const Args& a) {
  if (!a.replay_path.empty()) {
    mc::ChoiceTrace trace;
    std::string error;
    if (!mc::ChoiceTrace::read_file(a.replay_path, &trace, &error)) {
      std::fprintf(stderr, "explore --replay: %s\n", error.c_str());
      return 2;
    }
    if (a.cfg.id() != trace.config_id) {
      std::fprintf(stderr,
                   "explore --replay: config mismatch\n  trace: %s\n  flags: %s\n"
                   "pass the same configuration flags the trace was recorded with\n",
                   trace.config_id.c_str(), a.cfg.id().c_str());
      return 2;
    }
    std::ofstream csv(a.replay_trace, std::ios::trunc);
    if (!csv) {
      std::fprintf(stderr, "explore --replay: cannot write %s\n", a.replay_trace.c_str());
      return 2;
    }
    trace::CsvSink sink(csv);
    trace::Tracer recorder(sink, /*capacity=*/4096);
    const mc::Explorer::ReplayReport rep =
        mc::Explorer::replay(a.cfg, trace, &recorder);
    std::printf("replay: %zu choice points, oracle=%s at t=%.6g s\n",
                trace.choices.size(), rep.oracle.empty() ? "(none)" : rep.oracle.c_str(),
                rep.at_s);
    if (!rep.detail.empty()) std::printf("  %s\n", rep.detail.c_str());
    std::printf("  end-state hash %016llx (stored %016llx) — %s\n",
                static_cast<unsigned long long>(rep.end_state_hash),
                static_cast<unsigned long long>(trace.state_hash),
                rep.hash_matches ? "match" : "MISMATCH");
    if (rep.diverged) {
      std::fprintf(stderr, "  DIVERGED at choice point %zu — code drifted since the "
                           "trace was recorded\n", rep.divergence_at);
    }
    std::printf("  flight recorder: %s\n", a.replay_trace.c_str());
    if (!rep.ok()) {
      std::fprintf(stderr, "replay: failed to reproduce the recorded failure\n");
      return 1;
    }
    std::printf("replay: reproduced the recorded %s violation\n", trace.oracle.c_str());
    return 0;
  }

  mc::Explorer explorer(a.cfg, a.explore);
  const mc::ExploreStats st = explorer.explore();
  std::printf("explore %s: %llu schedules (%llu distinct states, %llu pruned as "
              "duplicates, %llu truncated), up to %llu choice points, %llu plans "
              "unexplored\n",
              a.cfg.label().c_str(), static_cast<unsigned long long>(st.schedules_run),
              static_cast<unsigned long long>(st.distinct_states),
              static_cast<unsigned long long>(st.duplicate_states),
              static_cast<unsigned long long>(st.truncated),
              static_cast<unsigned long long>(st.max_choice_points),
              static_cast<unsigned long long>(st.frontier_left));
  for (const mc::Violation& v : explorer.violations()) {
    std::printf("  violation [%s] at t=%.6g s: %s (%zu choices)\n", v.oracle.c_str(),
                v.at_s, v.detail.c_str(), v.trace.choices.size());
  }
  if (!explorer.violations().empty()) {
    if (!a.explore.trace_out.empty()) {
      std::printf("counterexample trace written to %s — replay with:\n"
                  "  elephant explore --replay %s [same config flags]\n",
                  a.explore.trace_out.c_str(), a.explore.trace_out.c_str());
    }
    return 1;
  }
  std::printf("explore: no oracle violations\n");
  return 0;
}

int cmd_report(const Args& a) {
  if (a.manifest.empty()) {
    std::fprintf(stderr, "report: --manifest PATH is required\n");
    return 2;
  }
  exp::ReportOptions opt;
  opt.manifest_path = a.manifest;
  for (const std::string& p : a.report_metrics) opt.metrics_paths.emplace_back(p);
  opt.top_n = a.report_top;
  exp::SweepSummary summary;
  std::string error;
  if (!exp::build_report(opt, &summary, &error)) {
    std::fprintf(stderr, "report: %s\n", error.c_str());
    return 1;
  }
  auto write_file = [](const std::string& path, const std::string& text,
                       const char* what) {
    std::ofstream out(path, std::ios::trunc);
    out << text;
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "report: cannot write %s file %s\n", what, path.c_str());
      return false;
    }
    return true;
  };
  if (!a.report_json.empty() &&
      !write_file(a.report_json, exp::render_report_json(summary) + "\n", "json")) {
    return 1;
  }
  const std::string md = exp::render_report_markdown(summary);
  if (!a.report_md.empty() && !write_file(a.report_md, md, "markdown")) return 1;
  std::fputs(md.c_str(), stdout);
  return 0;
}

int cmd_list() {
  std::printf("CCAs: reno cubic htcp bbr1 bbr2\n");
  std::printf("AQMs: fifo red fq_codel codel red_adaptive pie\n");
  std::printf("paper bandwidths:");
  for (const double bw : exp::paper_bandwidths()) {
    std::printf(" %s", exp::bw_label(bw).c_str());
  }
  std::printf("\npaper buffers (BDP):");
  for (const double bdp : exp::paper_buffer_bdps()) std::printf(" %g", bdp);
  std::printf("\npaper flow counts:");
  for (const double bw : exp::paper_bandwidths()) {
    std::printf(" %u", exp::ExperimentConfig::paper_flows_for(bw));
  }
  std::printf("\nworkload presets:");
  for (const std::string& p : workload::WorkloadSpec::preset_names()) {
    std::printf(" %s", p.c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.cmd == "run") return cmd_run(a);
  if (a.cmd == "sweep") {
    std::signal(SIGINT, on_drain_signal);
    std::signal(SIGTERM, on_drain_signal);
    try {
      return cmd_sweep(a);
    } catch (const std::exception& e) {
      // E.g. an unwritable manifest: better a loud nonzero exit than a sweep
      // whose durable record silently went nowhere.
      std::fprintf(stderr, "sweep: fatal: %s\n", e.what());
      return 1;
    }
  }
  if (a.cmd == "explore") {
    try {
      return cmd_explore(a);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "explore: fatal: %s\n", e.what());
      return 1;
    }
  }
  if (a.cmd == "report") {
    try {
      return cmd_report(a);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "report: fatal: %s\n", e.what());
      return 1;
    }
  }
  if (a.cmd == "list") return cmd_list();
  usage();
}
