// elephant — command-line front end for the experiment harness.
//
//   elephant run   [--cca1 K] [--cca2 K] [--aqm A] [--bdp X] [--bw BPS]
//                  [--flows N] [--duration S] [--seed S] [--rtt MS]
//                  [--loss P] [--ecn] [--reps N]
//   elephant sweep [--aqm A] [--bw BPS] [--pairs inter|intra|all] [--reps N]
//   elephant list  (CCAs, AQMs, and the paper's axis values)
//
// `run` prints one row; `sweep` prints a table over all buffer sizes for the
// selected slice, using (and filling) the shared on-disk result cache.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"

namespace {

using namespace elephant;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: elephant <run|sweep|list> [options]\n"
               "  run   --cca1 bbr1 --cca2 cubic --aqm fifo --bdp 2 --bw 1e9\n"
               "        [--flows N] [--duration S] [--seed S] [--rtt MS]\n"
               "        [--loss P] [--ecn] [--reps N]\n"
               "  sweep --aqm fifo --bw 1e9 [--pairs inter|intra|all] [--reps N]\n"
               "  list\n");
  std::exit(2);
}

struct Args {
  std::string cmd;
  exp::ExperimentConfig cfg;
  std::string pairs = "all";
  int reps = exp::default_repetitions();
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.cmd = argv[1];
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--cca1")) {
      a.cfg.cca1 = cca::cca_kind_from_string(need(i));
    } else if (!std::strcmp(arg, "--cca2")) {
      a.cfg.cca2 = cca::cca_kind_from_string(need(i));
    } else if (!std::strcmp(arg, "--aqm")) {
      a.cfg.aqm = aqm::aqm_kind_from_string(need(i));
    } else if (!std::strcmp(arg, "--bdp")) {
      a.cfg.buffer_bdp = std::atof(need(i));
    } else if (!std::strcmp(arg, "--bw")) {
      a.cfg.bottleneck_bps = std::atof(need(i));
    } else if (!std::strcmp(arg, "--flows")) {
      a.cfg.total_flows = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (!std::strcmp(arg, "--duration")) {
      a.cfg.duration = sim::Time::seconds(std::atof(need(i)));
    } else if (!std::strcmp(arg, "--seed")) {
      a.cfg.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (!std::strcmp(arg, "--rtt")) {
      a.cfg.rtt = sim::Time::milliseconds(std::atoll(need(i)));
    } else if (!std::strcmp(arg, "--loss")) {
      a.cfg.random_loss = std::atof(need(i));
    } else if (!std::strcmp(arg, "--ecn")) {
      a.cfg.ecn = true;
    } else if (!std::strcmp(arg, "--reps")) {
      a.reps = std::atoi(need(i));
    } else if (!std::strcmp(arg, "--pairs")) {
      a.pairs = need(i);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage();
    }
  }
  return a;
}

void print_row(const exp::AveragedResult& res) {
  std::printf("%-34s S1=%9.2fM S2=%9.2fM J=%6.3f util=%6.3f retx=%9.0f rtos=%5.0f\n",
              res.config.label().c_str(), res.sender_bps[0] / 1e6, res.sender_bps[1] / 1e6,
              res.jain2, res.utilization, res.retx_segments, res.rtos);
}

int cmd_run(const Args& a) {
  print_row(exp::run_averaged(a.cfg, a.reps));
  return 0;
}

int cmd_sweep(const Args& a) {
  std::vector<std::pair<cca::CcaKind, cca::CcaKind>> pairs;
  for (const auto& p : exp::paper_cca_pairs()) {
    const bool intra = p.first == p.second;
    if (a.pairs == "all" || (a.pairs == "intra" && intra) ||
        (a.pairs == "inter" && !intra)) {
      pairs.push_back(p);
    }
  }
  std::printf("%-18s", "pair \\ buffer");
  for (const double bdp : exp::paper_buffer_bdps()) std::printf("  %6g BDP", bdp);
  std::printf("   (Jain index, %s @ %s)\n", aqm::to_string(a.cfg.aqm).c_str(),
              exp::bw_label(a.cfg.bottleneck_bps).c_str());
  for (const auto& [c1, c2] : pairs) {
    std::printf("%-18s", (cca::to_string(c1) + " vs " + cca::to_string(c2)).c_str());
    for (const double bdp : exp::paper_buffer_bdps()) {
      exp::ExperimentConfig cfg = a.cfg;
      cfg.cca1 = c1;
      cfg.cca2 = c2;
      cfg.buffer_bdp = bdp;
      const auto res = exp::run_averaged(cfg, a.reps);
      std::printf("  %10.3f", res.jain2);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_list() {
  std::printf("CCAs: reno cubic htcp bbr1 bbr2\n");
  std::printf("AQMs: fifo red fq_codel codel red_adaptive pie\n");
  std::printf("paper bandwidths:");
  for (const double bw : exp::paper_bandwidths()) {
    std::printf(" %s", exp::bw_label(bw).c_str());
  }
  std::printf("\npaper buffers (BDP):");
  for (const double bdp : exp::paper_buffer_bdps()) std::printf(" %g", bdp);
  std::printf("\npaper flow counts:");
  for (const double bw : exp::paper_bandwidths()) {
    std::printf(" %u", exp::ExperimentConfig::paper_flows_for(bw));
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.cmd == "run") return cmd_run(a);
  if (a.cmd == "sweep") return cmd_sweep(a);
  if (a.cmd == "list") return cmd_list();
  usage();
}
