#!/usr/bin/env python3
"""Validate a telemetry heartbeat journal (metrics.jsonl).

CI's metrics-smoke gate: every line must be a standalone JSON object of the
shape the heartbeat writes, the last line must be the final snapshot, and the
named counters must be nonzero — a structurally valid journal whose event
counters are all zero means the instrumentation silently fell off the wire.

Usage:
  tools/check_metrics_jsonl.py metrics.jsonl
  tools/check_metrics_jsonl.py metrics.jsonl --require sim.events --require sweep.cells_done
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("journal")
    ap.add_argument("--require", action="append", default=[],
                    help="counter that must be nonzero in the final snapshot "
                         "(default: sim.events)")
    args = ap.parse_args()
    required = args.require or ["sim.events"]

    with open(args.journal) as f:
        lines = [line for line in (l.rstrip("\n") for l in f) if line]
    if not lines:
        print(f"error: {args.journal} is empty")
        return 1

    snapshots = []
    for i, line in enumerate(lines, 1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"error: line {i} is not valid JSON: {e}\n  {line[:200]}")
            return 1
        if not isinstance(obj, dict):
            print(f"error: line {i} is not a JSON object")
            return 1
        for key in ("elapsed_s", "final", "counters", "gauges"):
            if key not in obj:
                print(f"error: line {i} missing {key!r}")
                return 1
        snapshots.append(obj)

    final = snapshots[-1]
    if final["final"] is not True:
        print("error: last line is not the final snapshot (final != true)")
        return 1
    if any(s["final"] for s in snapshots[:-1]):
        print("error: a non-last line claims to be the final snapshot")
        return 1
    if "histograms" not in final:
        print("error: final snapshot omits histograms")
        return 1

    failures = []
    for name in required:
        value = final["counters"].get(name, 0)
        status = "ok" if value > 0 else "FAIL"
        print(f"  [{status}] {name} = {value}")
        if value <= 0:
            failures.append(name)
    if failures:
        print(f"\nerror: zero/missing counters in final snapshot: {failures}")
        return 1

    print(f"\n{args.journal}: {len(snapshots)} valid snapshot(s), "
          f"final at t={final['elapsed_s']}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
