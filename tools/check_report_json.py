#!/usr/bin/env python3
"""Validate an `elephant report --json` document (elephant-report-v1).

CI's report-smoke gate: the merged sweep report must carry the schema tag,
every section the renderer promises, and internally consistent accounting —
above all, per-worker attributed cell counts must sum to the manifest's
completed-cell count (the invariant `elephant report` is built around).

Usage:
  tools/check_report_json.py report.json
  tools/check_report_json.py report.json --min-workers 2 --min-completed 1
"""

import argparse
import json
import sys

NUMBER = (int, float)


def fail(msg):
    print(f"error: {msg}")
    return 1


def check_fields(obj, fields, where, errors):
    for name, kind in fields:
        if name not in obj:
            errors.append(f"{where}: missing key {name!r}")
        elif not isinstance(obj[name], kind):
            errors.append(f"{where}: {name!r} has type {type(obj[name]).__name__}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("report")
    ap.add_argument("--min-workers", type=int, default=1,
                    help="minimum distinct workers the report must attribute")
    ap.add_argument("--min-completed", type=int, default=1,
                    help="minimum completed cells the sweep must show")
    args = ap.parse_args()

    try:
        with open(args.report) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot parse {args.report}: {e}")

    if doc.get("schema") != "elephant-report-v1":
        return fail(f"schema tag is {doc.get('schema')!r}, want 'elephant-report-v1'")

    errors = []
    check_fields(doc, [("manifest", str), ("cells", dict), ("cache", dict),
                       ("workers", list), ("phases", list),
                       ("slowest_cells", list), ("episode_cells", list)],
                 "report", errors)
    if errors:
        for e in errors:
            print(f"error: {e}")
        return 1

    cells = doc["cells"]
    check_fields(cells, [("total", NUMBER), ("completed", NUMBER),
                         ("failed", NUMBER), ("claims", NUMBER),
                         ("steals", NUMBER), ("wall_s_total", NUMBER)],
                 "cells", errors)
    cache = doc["cache"]
    check_fields(cache, [("hits", NUMBER), ("misses", NUMBER),
                         ("hit_rate", NUMBER)], "cache", errors)

    for i, w in enumerate(doc["workers"]):
        check_fields(w, [("id", str), ("cells", NUMBER), ("claims", NUMBER),
                         ("steals", NUMBER), ("wall_s", NUMBER),
                         ("elapsed_s", NUMBER), ("utilization", NUMBER)],
                     f"workers[{i}]", errors)
    for i, p in enumerate(doc["phases"]):
        check_fields(p, [("name", str), ("count", NUMBER), ("total_s", NUMBER),
                         ("mean_s", NUMBER)], f"phases[{i}]", errors)
    for section in ("slowest_cells", "episode_cells"):
        for i, row in enumerate(doc[section]):
            check_fields(row, [("id", str), ("worker", str), ("status", str),
                               ("wall_s", NUMBER), ("episodes", NUMBER),
                               ("worst_jain", NUMBER), ("victim", NUMBER),
                               ("cause", str)], f"{section}[{i}]", errors)
    if errors:
        for e in errors:
            print(f"error: {e}")
        return 1

    # Accounting invariants.
    if cells["completed"] + cells["failed"] != cells["total"]:
        return fail(f"completed ({cells['completed']}) + failed ({cells['failed']}) "
                    f"!= total ({cells['total']})")
    attributed = sum(w["cells"] for w in doc["workers"])
    if attributed != cells["completed"]:
        return fail(f"sum of per-worker cells ({attributed}) != completed "
                    f"({cells['completed']})")
    if not 0.0 <= cache["hit_rate"] <= 1.0:
        return fail(f"cache hit_rate {cache['hit_rate']} outside [0, 1]")
    for row in doc["episode_cells"]:
        if not row["cause"]:
            return fail(f"episode cell {row['id']} has an empty cause tag")
        if not 0.0 <= row["worst_jain"] <= 1.0:
            return fail(f"episode cell {row['id']} worst_jain {row['worst_jain']} "
                        f"outside [0, 1]")

    if cells["completed"] < args.min_completed:
        return fail(f"only {cells['completed']} completed cells, "
                    f"want >= {args.min_completed}")
    if len(doc["workers"]) < args.min_workers:
        return fail(f"only {len(doc['workers'])} workers attributed, "
                    f"want >= {args.min_workers}")

    print(f"ok: {args.report}: {cells['completed']} cells over "
          f"{len(doc['workers'])} workers, {cells['steals']} steals, "
          f"{len(doc['episode_cells'])} episode cells")
    return 0


if __name__ == "__main__":
    sys.exit(main())
