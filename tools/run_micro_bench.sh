#!/usr/bin/env bash
# Run the micro-benchmark suite and distill a compact BENCH_micro.json:
# per-benchmark wall time, items/sec, and rate counters, plus the host
# context Google Benchmark records. The checked-in copy under results/ is
# the evidence trail for performance-sensitive PRs.
#
# Usage: tools/run_micro_bench.sh [build-dir] [output.json]
#   BENCH_FILTER     regex passed to --benchmark_filter   (default: all)
#   BENCH_MIN_TIME   passed to --benchmark_min_time, e.g. "0.01s" for a
#                    CI smoke run                         (default: unset)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-results/BENCH_micro.json}"
BIN="$BUILD_DIR/bench/micro_components"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target micro_components)" >&2
  exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

args=(--benchmark_out="$RAW" --benchmark_out_format=json)
[[ -n "${BENCH_FILTER:-}" ]] && args+=(--benchmark_filter="$BENCH_FILTER")
[[ -n "${BENCH_MIN_TIME:-}" ]] && args+=(--benchmark_min_time="$BENCH_MIN_TIME")

"$BIN" "${args[@]}"

mkdir -p "$(dirname "$OUT")"
python3 - "$RAW" "$OUT" <<'EOF'
import json, sys

raw = json.load(open(sys.argv[1]))
keep_counters = lambda b: {k: v for k, v in b.items()
                           if k not in ("name", "run_name", "run_type", "repetitions",
                                        "repetition_index", "threads", "iterations",
                                        "real_time", "cpu_time", "time_unit",
                                        "family_index", "per_family_instance_index")}
out = {
    "context": {k: raw["context"].get(k) for k in
                ("date", "host_name", "num_cpus", "mhz_per_cpu", "library_version",
                 "build_type") if k in raw["context"]},
    "benchmarks": [
        {
            "name": b["name"],
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b["time_unit"],
            "iterations": b["iterations"],
            **keep_counters(b),
        }
        for b in raw["benchmarks"] if b.get("run_type") != "aggregate"
    ],
}
json.dump(out, open(sys.argv[2], "w"), indent=1)
open(sys.argv[2], "a").write("\n")
print(f"wrote {sys.argv[2]} ({len(out['benchmarks'])} benchmarks)")
EOF
