// chaos_sweep — crash-tolerance harness for multi-worker sweeps.
//
// Proves the leased work queue's exactly-once guarantee the only way that
// counts: by killing workers. It runs one sweep twice over the same 30-cell
// matrix (5 intra CCA pairs x 6 buffer sizes):
//
//   1. reference: a single worker, no interference, into its own results
//      directory and manifest;
//   2. chaos: N `elephant sweep` worker processes sharing one manifest and
//      one results directory, while this harness SIGKILLs random live
//      workers (respawning a replacement with a fresh worker id each time)
//      until the kill budget is spent.
//
// Convergence is then checked structurally and numerically:
//   - every cell id has exactly one terminal (non-claimed) manifest line,
//     and it is a success — no lost cells, no duplicated completions;
//   - every cached .result file is byte-identical to the reference run's —
//     crashes and lease steals never change what is computed.
//
// Exit 0 when all assertions hold; 1 with a diagnostic otherwise.
//
//   chaos_sweep --elephant BIN --workdir DIR [--workers 3] [--kills 5]
//               [--lease-s 2] [--duration 600] [--kill-interval-ms 700]
//               [--timeout-s 240] [--seed 1234]

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "exp/manifest.hpp"
#include "exp/status.hpp"

namespace {

namespace fs = std::filesystem;
using elephant::exp::ManifestEntry;
using elephant::exp::RunStatus;
using elephant::exp::SweepManifest;

struct Options {
  std::string elephant;
  fs::path workdir;
  int workers = 3;
  int kills = 5;
  double lease_s = 2;
  double duration_s = 600;  // simulated seconds per cell
  int kill_interval_ms = 700;
  double timeout_s = 240;
  unsigned seed = 1234;
};

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "chaos_sweep: FAIL: %s\n", msg.c_str());
  std::exit(1);
}

pid_t spawn_worker(const Options& opt, const std::string& worker_id,
                   const fs::path& manifest, const fs::path& results_dir,
                   const fs::path& log_path) {
  const pid_t pid = ::fork();
  if (pid < 0) die("fork failed");
  if (pid != 0) return pid;

  // Child: own results dir via env, stdout/stderr to a per-worker log.
  ::setenv("ELEPHANT_RESULTS_DIR", results_dir.c_str(), 1);
  const int log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd >= 0) {
    ::dup2(log_fd, 1);
    ::dup2(log_fd, 2);
    ::close(log_fd);
  }
  std::vector<std::string> args = {
      opt.elephant, "sweep",
      "--pairs",    "intra",
      "--aqm",      "fifo",
      "--bw",       "100e6",
      "--flows",    "2",
      "--reps",     "1",
      "--duration", std::to_string(opt.duration_s),
      "--threads",  "1",
      "--retries",  "0",
      "--backoff",  "0.1",
      "--manifest", manifest.string(),
      "--resume",
      "--lease-s",  std::to_string(opt.lease_s),
      "--worker-id", worker_id,
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(opt.elephant.c_str(), argv.data());
  std::fprintf(stderr, "execv %s failed: %s\n", opt.elephant.c_str(),
               std::strerror(errno));
  ::_exit(127);
}

/// Raw journal scan (no latest-entry folding): terminal lines per cell id.
std::map<std::string, std::vector<ManifestEntry>> terminal_lines(const fs::path& manifest) {
  std::map<std::string, std::vector<ManifestEntry>> by_id;
  std::ifstream in(manifest);
  if (!in) die("cannot read manifest " + manifest.string());
  std::string line;
  while (std::getline(in, line)) {
    ManifestEntry e;
    if (!SweepManifest::parse_line(line, &e)) continue;
    if (e.status == RunStatus::kClaimed) continue;
    by_id[e.id].push_back(e);
  }
  return by_id;
}

/// A .result file minus its nondeterministic lines: wall_seconds measures
/// host time (crash re-runs legitimately differ) and sum covers it. Every
/// simulated quantity must still be bit-identical.
std::string result_file_essence(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) die("cannot read " + p.string());
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("wall_seconds=", 0) == 0 || line.rfind("sum=", 0) == 0) continue;
    out += line;
    out += '\n';
  }
  return out;
}

int run_reference(const Options& opt, const fs::path& manifest, const fs::path& results) {
  const pid_t pid =
      spawn_worker(opt, "ref", manifest, results, opt.workdir / "ref.log");
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) die("waitpid(reference) failed");
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    die("reference sweep did not exit 0");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) die(std::string("missing value for ") + arg);
      return argv[++i];
    };
    if (!std::strcmp(arg, "--elephant")) {
      opt.elephant = need();
    } else if (!std::strcmp(arg, "--workdir")) {
      opt.workdir = need();
    } else if (!std::strcmp(arg, "--workers")) {
      opt.workers = std::atoi(need());
    } else if (!std::strcmp(arg, "--kills")) {
      opt.kills = std::atoi(need());
    } else if (!std::strcmp(arg, "--lease-s")) {
      opt.lease_s = std::atof(need());
    } else if (!std::strcmp(arg, "--duration")) {
      opt.duration_s = std::atof(need());
    } else if (!std::strcmp(arg, "--kill-interval-ms")) {
      opt.kill_interval_ms = std::atoi(need());
    } else if (!std::strcmp(arg, "--timeout-s")) {
      opt.timeout_s = std::atof(need());
    } else if (!std::strcmp(arg, "--seed")) {
      opt.seed = static_cast<unsigned>(std::atoi(need()));
    } else {
      die(std::string("unknown option ") + arg);
    }
  }
  if (opt.elephant.empty() || opt.workdir.empty()) {
    die("--elephant BIN and --workdir DIR are required");
  }
  // A stale workdir holds an already-converged manifest, which would let
  // every worker exit before a single kill lands — start from scratch.
  std::error_code ec;
  fs::remove_all(opt.workdir, ec);
  ec.clear();
  fs::create_directories(opt.workdir, ec);
  if (ec) die("cannot create workdir");

  // ---- Phase 1: single-worker reference ---------------------------------
  const fs::path ref_manifest = opt.workdir / "ref-manifest.jsonl";
  const fs::path ref_results = opt.workdir / "ref-results";
  std::fprintf(stderr, "[chaos] reference run...\n");
  run_reference(opt, ref_manifest, ref_results);
  const auto ref_terminal = terminal_lines(ref_manifest);
  if (ref_terminal.empty()) die("reference manifest has no terminal lines");
  std::fprintf(stderr, "[chaos] reference: %zu cells\n", ref_terminal.size());

  // ---- Phase 2: N workers + SIGKILL chaos -------------------------------
  const fs::path manifest = opt.workdir / "manifest.jsonl";
  const fs::path results = opt.workdir / "results";
  std::mt19937 rng(opt.seed);
  std::vector<std::pair<pid_t, std::string>> live;
  int generation = 0;
  auto spawn = [&] {
    const std::string id = "w" + std::to_string(generation++);
    const pid_t pid =
        spawn_worker(opt, id, manifest, results, opt.workdir / (id + ".log"));
    live.emplace_back(pid, id);
    std::fprintf(stderr, "[chaos] spawned %s (pid %d)\n", id.c_str(), pid);
  };
  for (int w = 0; w < opt.workers; ++w) spawn();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(opt.timeout_s);
  auto reap = [&] {
    for (std::size_t k = 0; k < live.size();) {
      int status = 0;
      const pid_t r = ::waitpid(live[k].first, &status, WNOHANG);
      if (r == live[k].first) {
        std::fprintf(stderr, "[chaos] %s exited (status %d)\n", live[k].second.c_str(),
                     WIFEXITED(status) ? WEXITSTATUS(status) : -1);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        ++k;
      }
    }
  };

  int kills_done = 0;
  while (kills_done < opt.kills) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.kill_interval_ms));
    if (std::chrono::steady_clock::now() > deadline) die("timeout during kill phase");
    reap();
    if (live.empty()) {
      // Everyone finished before the budget was spent: converged early. The
      // structural checks below still apply, but log the shortfall — a
      // too-fast matrix weakens the chaos.
      std::fprintf(stderr, "[chaos] workers converged after %d/%d kills\n", kills_done,
                   opt.kills);
      break;
    }
    const std::size_t victim =
        std::uniform_int_distribution<std::size_t>(0, live.size() - 1)(rng);
    std::fprintf(stderr, "[chaos] SIGKILL %s (pid %d)\n", live[victim].second.c_str(),
                 live[victim].first);
    ::kill(live[victim].first, SIGKILL);
    ::waitpid(live[victim].first, nullptr, 0);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    ++kills_done;
    spawn();  // a replacement with a fresh id joins via --resume
  }

  // Wait for the survivors to converge.
  while (!live.empty()) {
    if (std::chrono::steady_clock::now() > deadline) {
      for (auto& [pid, id] : live) ::kill(pid, SIGKILL);
      die("timeout waiting for convergence");
    }
    reap();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // ---- Phase 3: exactly-once + bit-identical assertions -----------------
  const auto chaos_terminal = terminal_lines(manifest);
  if (chaos_terminal.size() != ref_terminal.size()) {
    die("cell count mismatch: chaos " + std::to_string(chaos_terminal.size()) +
        " vs reference " + std::to_string(ref_terminal.size()));
  }
  for (const auto& [id, lines] : chaos_terminal) {
    if (ref_terminal.find(id) == ref_terminal.end()) die("unexpected cell id " + id);
    if (lines.size() != 1) {
      die("cell " + id + " has " + std::to_string(lines.size()) +
          " terminal lines (want exactly 1)");
    }
    if (!lines[0].success()) die("cell " + id + " did not succeed: " + lines[0].error);
    const ManifestEntry& c = lines[0];
    const ManifestEntry& r = ref_terminal.at(id)[0];
    if (c.sender_bps[0] != r.sender_bps[0] || c.sender_bps[1] != r.sender_bps[1] ||
        c.jain2 != r.jain2 || c.utilization != r.utilization ||
        c.retx_segments != r.retx_segments || c.rtos != r.rtos) {
      die("cell " + id + " metrics differ from the reference run");
    }
  }

  std::size_t compared = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(ref_results)) {
    if (entry.path().extension() != ".result") continue;
    const fs::path chaos_file = results / entry.path().filename();
    if (!fs::exists(chaos_file)) die("missing result file " + chaos_file.string());
    if (result_file_essence(entry.path()) != result_file_essence(chaos_file)) {
      die("result file differs from reference: " + chaos_file.string());
    }
    ++compared;
  }
  if (compared != ref_terminal.size()) {
    die("compared " + std::to_string(compared) + " result files, expected " +
        std::to_string(ref_terminal.size()));
  }

  std::fprintf(stderr,
               "[chaos] PASS: %zu cells exactly-once, %zu result files "
               "bit-identical, %d workers killed\n",
               chaos_terminal.size(), compared, kills_done);
  return 0;
}
