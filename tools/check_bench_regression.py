#!/usr/bin/env python3
"""Gate a fresh micro-benchmark run against the checked-in baseline.

Compares per-benchmark cpu_time in a candidate BENCH_micro.json (as written
by tools/run_micro_bench.sh) against the baseline copy under results/ and
fails if any benchmark slowed by more than the threshold (default 15%).

Raw wall times on a CI runner are not comparable to the laptop that produced
the baseline, so --normalize-by (default: BM_SchedulerChurn/0, the smallest
pure-engine benchmark) rescales the candidate by the ratio of that anchor's
times first: what is actually gated is each benchmark's slowdown *relative to
the anchor's*, which cancels the host-speed difference. Pass
--normalize-by '' to compare raw times (same-host A/B runs).

Benchmarks present on only one side are reported but never fail the gate, so
adding a benchmark does not require regenerating the baseline in the same
commit.

Usage:
  tools/check_bench_regression.py results/BENCH_micro.json /tmp/BENCH_micro.json
  tools/check_bench_regression.py baseline.json candidate.json --threshold 0.10
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        out[b["name"]] = float(b["cpu_time"])
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional slowdown (default 0.15)")
    ap.add_argument("--normalize-by", default="BM_SchedulerChurn/0",
                    help="anchor benchmark for cross-host calibration "
                         "('' = compare raw times)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    scale = 1.0
    if args.normalize_by:
        if args.normalize_by not in base or args.normalize_by not in cand:
            # A filtered run (e.g. a smoke job gating only its own benchmark
            # family) legitimately omits the anchor; fall back to raw times
            # with a notice rather than rejecting the comparison outright.
            print(f"notice: anchor {args.normalize_by!r} missing from "
                  f"{'baseline' if args.normalize_by not in base else 'candidate'}"
                  f"; comparing raw times (no host calibration)")
        else:
            scale = base[args.normalize_by] / cand[args.normalize_by]
            print(f"normalizing by {args.normalize_by}: candidate x {scale:.3f}")

    failures = []
    for name in sorted(base):
        if name not in cand:
            print(f"  [only-baseline] {name}")
            continue
        adjusted = cand[name] * scale
        ratio = adjusted / base[name] if base[name] > 0 else 1.0
        marker = "FAIL" if ratio > 1 + args.threshold else "ok"
        print(f"  [{marker}] {name}: {base[name]:.1f} -> {adjusted:.1f} ns "
              f"({(ratio - 1) * 100:+.1f}%)")
        if ratio > 1 + args.threshold:
            failures.append((name, ratio))
    for name in sorted(set(cand) - set(base)):
        print(f"  [only-candidate] {name}")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.threshold * 100:.0f}%:")
        for name, ratio in failures:
            print(f"  {name}: {(ratio - 1) * 100:+.1f}%")
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
